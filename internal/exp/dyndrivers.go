// Dynamic-topology drivers: experiments whose topology changes mid-run
// through the Spec event timeline, exercising the forwarding-table
// routing layer end to end. Handover migrates a flow between two base
// stations (both the data and the ACK route move atomically, in-flight
// packets on the abandoned path are counted losses); LinkFlap runs a
// chain whose single cellular link suffers timed outages. AutoRoute and
// FlapStorm are their route-computation counterparts: the events script
// only link state, and the Routing policy (kfailover / shortest) moves
// the routes itself — handover and flap recovery as emergent behavior.
// All four have declarative twins in examples/scenarios/
// (handover.json, flap.json, autoroute.json, flapstorm.json).
package exp

import (
	"fmt"

	"abc/internal/metrics"
	"abc/internal/netem"
	"abc/internal/sim"
	"abc/internal/trace"
)

// HandoverResult is one scheme's outcome on the handover scenario.
type HandoverResult struct {
	// Flow summarizes the migrating flow over the whole run.
	Flow metrics.Summary
	// PreMbps / PostMbps are the flow's mean throughput over the windows
	// before and after the handover instant (excluding warmup).
	PreMbps, PostMbps float64
	// HandoverDrops counts packets stranded in flight on the abandoned
	// path when the route moved (Result.Drops: they drain to the next
	// junction and are counted there).
	HandoverDrops int64
	// Retx is the sender's retransmission count — the transport-level
	// cost of the handover losses.
	Retx int64
	// Events annotates the executed timeline.
	Events []EventResult
}

// handoverSpec builds the two-base-station topology for one scheme: a
// core junction fans out to bs1 (Verizon1 trace) and bs2 (TMobile2
// trace), each reaching the UE over a short wire; the flow starts on
// bs1 and at handoverAt both its data route and its ACK route move to
// bs2. The UE-side uplink wires carry the ACKs back through the core.
func handoverSpec(scheme string, handoverAt, dur sim.Time, seed int64) Spec {
	return Spec{
		Seed:     seed,
		Duration: dur,
		RTT:      80 * sim.Millisecond,
		Sample:   100 * sim.Millisecond,
		Nodes:    []string{"core", "bs1", "bs2", "ue", "ret"},
		Edges: []EdgeSpec{
			{Name: "cell1", From: "core", To: "bs1",
				Link: LinkSpec{Trace: trace.MustNamedCellular("Verizon1"), Qdisc: QdiscSpec{Kind: "auto"}}},
			{Name: "cell2", From: "core", To: "bs2",
				Link: LinkSpec{Trace: trace.MustNamedCellular("TMobile2"), Qdisc: QdiscSpec{Kind: "auto"}}},
			{Name: "air1", From: "bs1", To: "ue",
				Link: LinkSpec{Kind: "wire", Delay: 5 * sim.Millisecond}},
			{Name: "air2", From: "bs2", To: "ue",
				Link: LinkSpec{Kind: "wire", Delay: 8 * sim.Millisecond}},
			{Name: "up1", From: "ue", To: "bs1",
				Link: LinkSpec{Kind: "wire", Delay: 5 * sim.Millisecond}},
			{Name: "up2", From: "ue", To: "bs2",
				Link: LinkSpec{Kind: "wire", Delay: 8 * sim.Millisecond}},
			{Name: "ret1", From: "bs1", To: "ret",
				Link: LinkSpec{Kind: "wire", Delay: 2 * sim.Millisecond}},
			{Name: "ret2", From: "bs2", To: "ret",
				Link: LinkSpec{Kind: "wire", Delay: 2 * sim.Millisecond}},
		},
		Flows: []FlowSpec{
			{Scheme: scheme, Path: []string{"cell1", "air1"}, AckPath: []string{"up1", "ret1"}},
		},
		Events: []EventSpec{
			{At: handoverAt, Kind: EventReroute, Flow: 0, Path: []string{"cell2", "air2"}},
			{At: handoverAt, Kind: EventReroute, Flow: 0, Ack: true, Path: []string{"up2", "ret2"}},
		},
	}
}

// Handover runs each scheme's backlogged flow through a mid-run
// base-station handover: at half the duration the flow's data and ACK
// routes move from the Verizon1 cell to the TMobile2 cell in one atomic
// table swap. Packets in flight on the abandoned path are genuine
// handover losses (counted, never duplicated), and the driver reports
// how quickly each scheme's throughput re-converges on the new cell.
func Handover(schemes []string, dur sim.Time, seed int64) (map[string]HandoverResult, error) {
	if len(schemes) == 0 {
		schemes = []string{"ABC", "Cubic"}
	}
	if dur <= 0 {
		dur = 30 * sim.Second
	}
	handoverAt := dur / 2
	results := make([]HandoverResult, len(schemes))
	err := forEachCell(len(schemes), func(i int) string {
		return fmt.Sprintf("handover scheme=%s seed=%d", schemes[i], seed)
	}, func(i int) error {
		spec := handoverSpec(schemes[i], handoverAt, dur, seed)
		res, _, err := Run(spec)
		if err != nil {
			return err
		}
		f0 := &res.Flows[0]
		r := HandoverResult{
			Flow: metrics.Summary{
				Scheme:      schemes[i],
				Utilization: res.Utilization,
				TputMbps:    f0.TputMbps,
				MeanMs:      f0.Delay.Mean(),
				P95Ms:       f0.Delay.P95(),
			},
			HandoverDrops: res.Drops,
			Retx:          f0.Retx,
			Events:        res.Events,
		}
		// res.Spec carries the normalized Warmup (Run defaults it on its
		// own copy); the driver-local spec still says zero.
		r.PreMbps, r.PostMbps = splitMean(f0.Tput, handoverAt, res.Spec.Warmup)
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]HandoverResult, len(schemes))
	for i, sch := range schemes {
		out[sch] = results[i]
	}
	return out, nil
}

// splitMean averages a sampled throughput series before and after the
// split instant, ignoring samples before warmup.
func splitMean(ts *metrics.Timeseries, split, warmup sim.Time) (pre, post float64) {
	if ts == nil {
		return 0, 0
	}
	var preSum, postSum float64
	var preN, postN int
	for i, at := range ts.Times {
		when := sim.FromSeconds(at)
		if when < warmup {
			continue
		}
		if when < split {
			preSum += ts.Values[i]
			preN++
		} else {
			postSum += ts.Values[i]
			postN++
		}
	}
	if preN > 0 {
		pre = preSum / float64(preN)
	}
	if postN > 0 {
		post = postSum / float64(postN)
	}
	return pre, post
}

// FlapResult is one scheme's outcome on the flapping-link scenario.
type FlapResult struct {
	// Flow summarizes the flow over the whole run, outages included.
	Flow metrics.Summary
	// OutageDrops counts packets dropped at the downed link's entry
	// (Result.LinkDownDrops).
	OutageDrops int64
	// Lost / Retx are the sender's loss-detection and retransmission
	// counts.
	Lost, Retx int64
	// Events annotates the executed timeline.
	Events []EventResult
}

// LinkFlap runs each scheme's backlogged flow over a chain whose single
// rate link goes down for two 500 ms outage windows (at one third and
// two thirds of the run), addressed through the chain's canonical edge
// name "fwd0". It measures how each scheme rides out the outages: drops
// at the dead link, timeout-driven retransmissions, and the delay cost
// of the queue that rebuilds on recovery.
func LinkFlap(schemes []string, dur sim.Time, seed int64) (map[string]FlapResult, error) {
	if len(schemes) == 0 {
		schemes = []string{"ABC", "Cubic"}
	}
	if dur <= 0 {
		dur = 30 * sim.Second
	}
	const outage = 500 * sim.Millisecond
	results := make([]FlapResult, len(schemes))
	err := forEachCell(len(schemes), func(i int) string {
		return fmt.Sprintf("linkflap scheme=%s seed=%d", schemes[i], seed)
	}, func(i int) error {
		spec := Spec{
			Seed:     seed,
			Duration: dur,
			RTT:      80 * sim.Millisecond,
			Links: []LinkSpec{{
				Rate:  netem.ConstRate(12e6),
				Qdisc: QdiscSpec{Kind: "auto"},
			}},
			Flows: []FlowSpec{{Scheme: schemes[i]}},
			Events: []EventSpec{
				{At: dur / 3, Kind: EventLinkDown, Edge: "fwd0"},
				{At: dur/3 + outage, Kind: EventLinkUp, Edge: "fwd0"},
				{At: 2 * dur / 3, Kind: EventLinkDown, Edge: "fwd0"},
				{At: 2*dur/3 + outage, Kind: EventLinkUp, Edge: "fwd0"},
			},
		}
		res, _, err := Run(spec)
		if err != nil {
			return err
		}
		f0 := &res.Flows[0]
		results[i] = FlapResult{
			Flow: metrics.Summary{
				Scheme:      schemes[i],
				Utilization: res.Utilization,
				TputMbps:    f0.TputMbps,
				MeanMs:      f0.Delay.Mean(),
				P95Ms:       f0.Delay.P95(),
			},
			OutageDrops: res.LinkDownDrops,
			Lost:        f0.Lost,
			Retx:        f0.Retx,
			Events:      res.Events,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]FlapResult, len(schemes))
	for i, sch := range schemes {
		out[sch] = results[i]
	}
	return out, nil
}

// AutoRouteResult is one scheme's outcome on the emergent-handover
// scenario: no scripted reroutes — the k-failover policy moves the
// routes itself when the serving cell's links go down, and moves them
// back (make-before-break) on recovery.
type AutoRouteResult struct {
	// Flow summarizes the migrating flow over the whole run.
	Flow metrics.Summary
	// PreMbps / PostMbps are the flow's mean throughput before and after
	// the outage instant (excluding warmup).
	PreMbps, PostMbps float64
	// OutageDrops counts packets that hit the downed links' gates during
	// the policy's convergence window (Result.LinkDownDrops).
	OutageDrops int64
	// StrandedDrops counts packets stranded at junctions by the route
	// changes (Result.Drops) — with the make-before-break drain window
	// this stays at the stragglers the window doesn't cover.
	StrandedDrops int64
	// Retx is the sender's retransmission count.
	Retx int64
	// RouteChanges annotates every route the policy moved.
	RouteChanges []RouteChangeResult
}

// autoRouteSpec is the handover topology without its scripted reroutes:
// the cell1/up1 outage is scripted, the handover itself is emergent
// (kfailover with one precomputed backup per route, 20 ms control-plane
// convergence, 50 ms make-before-break drain).
func autoRouteSpec(scheme string, outageAt, recoverAt, dur sim.Time, seed int64) Spec {
	spec := handoverSpec(scheme, 0, dur, seed)
	spec.Events = []EventSpec{
		{At: outageAt, Kind: EventLinkDown, Edge: "cell1"},
		{At: outageAt, Kind: EventLinkDown, Edge: "up1"},
		{At: recoverAt, Kind: EventLinkUp, Edge: "cell1"},
		{At: recoverAt, Kind: EventLinkUp, Edge: "up1"},
	}
	spec.Routing = &RoutingSpec{
		Policy:           "kfailover",
		K:                1,
		RecomputeLatency: 20 * sim.Millisecond,
		Drain:            50 * sim.Millisecond,
	}
	return spec
}

// AutoRoute runs each scheme through an *emergent* base-station
// handover: at half the duration the serving cell's downlink and uplink
// go dark, and the route-computation layer — not an event timeline —
// fails the flow's data and ACK routes over to the precomputed backup
// cell, draining the old paths make-before-break. At three quarters the
// links recover and the policy moves the routes back. The reported
// RouteChanges are part of the golden digest: the emergent timeline is
// locked exactly like a scripted one.
func AutoRoute(schemes []string, dur sim.Time, seed int64) (map[string]AutoRouteResult, error) {
	if len(schemes) == 0 {
		schemes = []string{"ABC", "Cubic"}
	}
	if dur <= 0 {
		dur = 30 * sim.Second
	}
	outageAt, recoverAt := dur/2, dur-dur/4
	results := make([]AutoRouteResult, len(schemes))
	err := forEachCell(len(schemes), func(i int) string {
		return fmt.Sprintf("autoroute scheme=%s seed=%d", schemes[i], seed)
	}, func(i int) error {
		res, _, err := Run(autoRouteSpec(schemes[i], outageAt, recoverAt, dur, seed))
		if err != nil {
			return err
		}
		f0 := &res.Flows[0]
		r := AutoRouteResult{
			Flow: metrics.Summary{
				Scheme:      schemes[i],
				Utilization: res.Utilization,
				TputMbps:    f0.TputMbps,
				MeanMs:      f0.Delay.Mean(),
				P95Ms:       f0.Delay.P95(),
			},
			OutageDrops:   res.LinkDownDrops,
			StrandedDrops: res.Drops,
			Retx:          f0.Retx,
			RouteChanges:  res.RouteChanges,
		}
		r.PreMbps, r.PostMbps = splitMean(f0.Tput, outageAt, res.Spec.Warmup)
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]AutoRouteResult, len(schemes))
	for i, sch := range schemes {
		out[sch] = results[i]
	}
	return out, nil
}

// FlapStormResult is one scheme's outcome on the flap-storm scenario.
type FlapStormResult struct {
	// Flow summarizes the flow over the whole run, outages included.
	Flow metrics.Summary
	// OutageDrops counts packets dropped at downed links' gates
	// (Result.LinkDownDrops); StrandedDrops the packets stranded at
	// junctions by emergent reroutes (Result.Drops).
	OutageDrops, StrandedDrops int64
	// Lost / Retx are the sender's loss-detection and retransmission
	// counts.
	Lost, Retx int64
	// RouteChanges annotates every route the policy moved. Flaps shorter
	// than the convergence window are absorbed and appear only as outage
	// drops, not route changes.
	RouteChanges []RouteChangeResult
}

// FlapStorm runs each scheme over a two-path mesh whose primary link
// suffers a storm of outages — two long enough that the shortest-path
// policy fails over to the slower backup path and back, and one shorter
// than the 30 ms convergence window, which the coalescing recompute
// absorbs entirely (the route must not move for it). Scripted events
// supply only the link state; every route change is emergent.
func FlapStorm(schemes []string, dur sim.Time, seed int64) (map[string]FlapStormResult, error) {
	if len(schemes) == 0 {
		schemes = []string{"ABC", "Cubic"}
	}
	if dur <= 0 {
		dur = 30 * sim.Second
	}
	const outage = 300 * sim.Millisecond
	const blip = 20 * sim.Millisecond // under the 30 ms convergence window
	results := make([]FlapStormResult, len(schemes))
	err := forEachCell(len(schemes), func(i int) string {
		return fmt.Sprintf("flapstorm scheme=%s seed=%d", schemes[i], seed)
	}, func(i int) error {
		spec := Spec{
			Seed:     seed,
			Duration: dur,
			RTT:      80 * sim.Millisecond,
			Sample:   100 * sim.Millisecond,
			Nodes:    []string{"src", "m1", "m2", "dst"},
			Edges: []EdgeSpec{
				{Name: "pA", From: "src", To: "m1",
					Link: LinkSpec{Rate: netem.ConstRate(12e6), Delay: 2 * sim.Millisecond, Qdisc: QdiscSpec{Kind: "auto"}}},
				{Name: "pB", From: "m1", To: "dst",
					Link: LinkSpec{Kind: "wire", Delay: 2 * sim.Millisecond}},
				{Name: "qA", From: "src", To: "m2",
					Link: LinkSpec{Rate: netem.ConstRate(10e6), Delay: 8 * sim.Millisecond, Qdisc: QdiscSpec{Kind: "auto"}}},
				{Name: "qB", From: "m2", To: "dst",
					Link: LinkSpec{Kind: "wire", Delay: 8 * sim.Millisecond}},
			},
			Flows: []FlowSpec{{Scheme: schemes[i], Path: []string{"pA", "pB"}}},
			Events: []EventSpec{
				{At: dur / 4, Kind: EventLinkDown, Edge: "pA"},
				{At: dur/4 + outage, Kind: EventLinkUp, Edge: "pA"},
				{At: dur / 2, Kind: EventLinkDown, Edge: "pA"},
				{At: dur/2 + blip, Kind: EventLinkUp, Edge: "pA"},
				{At: dur - dur/4, Kind: EventLinkDown, Edge: "pA"},
				{At: dur - dur/4 + outage, Kind: EventLinkUp, Edge: "pA"},
			},
			Routing: &RoutingSpec{
				Policy:           "shortest",
				RecomputeLatency: 30 * sim.Millisecond,
			},
		}
		res, _, err := Run(spec)
		if err != nil {
			return err
		}
		f0 := &res.Flows[0]
		results[i] = FlapStormResult{
			Flow: metrics.Summary{
				Scheme:      schemes[i],
				Utilization: res.Utilization,
				TputMbps:    f0.TputMbps,
				MeanMs:      f0.Delay.Mean(),
				P95Ms:       f0.Delay.P95(),
			},
			OutageDrops:   res.LinkDownDrops,
			StrandedDrops: res.Drops,
			Lost:          f0.Lost,
			Retx:          f0.Retx,
			RouteChanges:  res.RouteChanges,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]FlapStormResult, len(schemes))
	for i, sch := range schemes {
		out[sch] = results[i]
	}
	return out, nil
}

// FormatAutoRouteResult renders one scheme's emergent-handover row.
func FormatAutoRouteResult(scheme string, r AutoRouteResult) string {
	return fmt.Sprintf("%-14s tput=%6.2f Mbit/s (pre %5.2f, post %5.2f)  p95=%6.1f ms  route changes=%d  outage drops=%d  stranded=%d  retx=%d\n",
		scheme, r.Flow.TputMbps, r.PreMbps, r.PostMbps, r.Flow.P95Ms, len(r.RouteChanges), r.OutageDrops, r.StrandedDrops, r.Retx)
}

// FormatFlapStormResult renders one scheme's flap-storm row.
func FormatFlapStormResult(scheme string, r FlapStormResult) string {
	return fmt.Sprintf("%-14s tput=%6.2f Mbit/s  p95=%6.1f ms  route changes=%d  outage drops=%d  stranded=%d  lost=%d  retx=%d\n",
		scheme, r.Flow.TputMbps, r.Flow.P95Ms, len(r.RouteChanges), r.OutageDrops, r.StrandedDrops, r.Lost, r.Retx)
}

// FormatHandoverResult renders one scheme's handover row.
func FormatHandoverResult(scheme string, r HandoverResult) string {
	return fmt.Sprintf("%-14s tput=%6.2f Mbit/s (pre %5.2f, post %5.2f)  p95=%6.1f ms  handover drops=%d  retx=%d\n",
		scheme, r.Flow.TputMbps, r.PreMbps, r.PostMbps, r.Flow.P95Ms, r.HandoverDrops, r.Retx)
}

// FormatFlapResult renders one scheme's flapping-link row.
func FormatFlapResult(scheme string, r FlapResult) string {
	return fmt.Sprintf("%-14s tput=%6.2f Mbit/s  p95=%6.1f ms  outage drops=%d  lost=%d  retx=%d\n",
		scheme, r.Flow.TputMbps, r.Flow.P95Ms, r.OutageDrops, r.Lost, r.Retx)
}
