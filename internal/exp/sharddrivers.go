// Sharded-execution driver: a mesh engineered so its result is
// byte-identical at any shard count, locking the conservative-lookahead
// runtime down in the golden corpus. The topology is a ring of four
// independent bottlenecks — flow k enters at junction j<2k>, crosses its
// own rate bottleneck, and exits one junction into the next pair's
// territory, so every data path (and every direct ACK tail) crosses a
// shard cut at 2 and 4 shards. Determinism across shard counts holds
// because the flows share no queue, no qdisc draws randomness
// (droptail/ABC only), and the reported metrics are all per-flow — fed
// in each flow's own arrival order, which cross-shard handoff preserves
// (mailboxes drain in timestamp order and a flow's packets are totally
// ordered along its path).
package exp

import (
	"fmt"
	"strings"

	"abc/internal/netem"
	"abc/internal/sim"
)

// ShardedMeshFlow is one flow's outcome on the sharded-mesh scenario.
type ShardedMeshFlow struct {
	Scheme   string
	Path     string
	Bytes    int64
	TputMbps float64
	MeanMs   float64
	P95Ms    float64
	QMeanMs  float64
	Lost     int64
	Retx     int64
}

// ShardedMeshResult is the outcome of one sharded-mesh run.
type ShardedMeshResult struct {
	// Shards is the shard count the run actually used.
	Shards int
	Flows  []ShardedMeshFlow
	// Drops counts unrouted arrivals (must be zero).
	Drops int64
}

// shardedMeshSpec builds the four-bottleneck ring. Rates and delays are
// deliberately non-round so no two event timestamps coincide by
// construction, keeping the digest insensitive to tie-break differences
// between the sequential heap and the cross-shard mailbox drain.
func shardedMeshSpec(shards int, dur sim.Time, seed int64) Spec {
	rates := []float64{21.7e6, 34.1e6, 27.9e6, 40.3e6}
	schemes := []string{"ABC", "Cubic", "ABC", "Cubic"}
	spec := Spec{
		Seed:     seed,
		Duration: dur,
		RTT:      30 * sim.Millisecond,
		Shards:   shards,
	}
	for j := 0; j < 8; j++ {
		spec.Nodes = append(spec.Nodes, fmt.Sprintf("j%d", j))
	}
	for k := 0; k < 4; k++ {
		spec.Edges = append(spec.Edges,
			EdgeSpec{Name: fmt.Sprintf("bot%d", k),
				From: fmt.Sprintf("j%d", 2*k), To: fmt.Sprintf("j%d", 2*k+1),
				Link: LinkSpec{Rate: netem.ConstRate(rates[k]), Qdisc: QdiscSpec{Kind: "auto"},
					Delay: 1700 * sim.Microsecond}},
			EdgeSpec{Name: fmt.Sprintf("hop%d", k),
				From: fmt.Sprintf("j%d", 2*k+1), To: fmt.Sprintf("j%d", (2*k+2)%8),
				Link: LinkSpec{Kind: "wire", Delay: 6100 * sim.Microsecond}},
		)
		spec.Flows = append(spec.Flows, FlowSpec{
			Scheme: schemes[k],
			Path:   []string{fmt.Sprintf("bot%d", k), fmt.Sprintf("hop%d", k)},
		})
	}
	return spec
}

// ShardedMesh runs the four-bottleneck ring with the given shard count
// (<= 1 is the sequential simulator). The result is a pure function of
// (dur, seed) alone — TestShardedMeshDigestInvariant and the golden
// corpus hold it byte-identical across shard counts.
func ShardedMesh(shards int, dur sim.Time, seed int64) (*ShardedMeshResult, error) {
	if dur <= 0 {
		dur = 30 * sim.Second
	}
	spec := shardedMeshSpec(shards, dur, seed)
	res, _, err := Run(spec)
	if err != nil {
		return nil, err
	}
	r := &ShardedMeshResult{Shards: shards, Drops: res.Drops}
	for f := range res.Flows {
		fr := &res.Flows[f]
		r.Flows = append(r.Flows, ShardedMeshFlow{
			Scheme:   fr.Scheme,
			Path:     strings.Join(spec.Flows[f].Path, ">"),
			Bytes:    fr.Bytes,
			TputMbps: fr.TputMbps,
			MeanMs:   fr.Delay.Mean(),
			P95Ms:    fr.Delay.P95(),
			QMeanMs:  fr.QDelay.Mean(),
			Lost:     fr.Lost,
			Retx:     fr.Retx,
		})
	}
	return r, nil
}
