package exp

import (
	"bytes"
	"encoding/gob"
	"path/filepath"
	"testing"

	"abc/internal/abc"
	"abc/internal/netem"
	"abc/internal/packet"
	"abc/internal/qdisc"
	"abc/internal/sim"
	"abc/internal/topo"
	"abc/internal/trace"
)

// TestRunRejectsBadEnterAt: out-of-range EnterAt must be an error, not a
// silent clamp to link 0.
func TestRunRejectsBadEnterAt(t *testing.T) {
	base := Spec{
		Seed:     1,
		Duration: 2 * sim.Second,
		Links:    []LinkSpec{{Rate: netem.ConstRate(10e6)}},
	}
	for _, tc := range []struct {
		name string
		flow FlowSpec
	}{
		{"enter negative", FlowSpec{Scheme: "ABC", EnterAt: -1}},
		{"enter past end", FlowSpec{Scheme: "ABC", EnterAt: 1}},
		{"exit before enter", FlowSpec{Scheme: "ABC", EnterAt: 0, ExitAt: -2}},
		{"exit past end", FlowSpec{Scheme: "ABC", ExitAt: 2}},
		{"reverse without reverse links", FlowSpec{Scheme: "ABC", Dir: Reverse}},
	} {
		spec := base
		spec.Flows = []FlowSpec{tc.flow}
		if _, _, err := Run(spec); err == nil {
			t.Errorf("%s: Run accepted invalid flow %+v", tc.name, tc.flow)
		}
	}
}

// TestAutoQdiscDerivedPerLink: an "auto" qdisc on a link skipped by the
// first flow must derive from a flow that actually enters that link.
func TestAutoQdiscDerivedPerLink(t *testing.T) {
	res, _, err := Run(Spec{
		Seed:     1,
		Duration: 2 * sim.Second,
		Links: []LinkSpec{
			{Rate: netem.ConstRate(20e6)},
			{Rate: netem.ConstRate(20e6)},
		},
		Flows: []FlowSpec{
			// Flow 0 (Cubic) only traverses link 0; flow 1 (ABC) only
			// traverses link 1. Deriving both links from flows[0] — the
			// old behaviour — would leave ABC on a droptail bottleneck.
			{Scheme: "Cubic", EnterAt: 0, ExitAt: 1},
			{Scheme: "ABC", EnterAt: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Qdiscs[1].(*abc.Router); !ok {
		t.Errorf("link 1 qdisc = %T, want *abc.Router (derived from the ABC flow entering it)", res.Qdiscs[1])
	}
	if _, ok := res.Qdiscs[0].(*abc.Router); ok {
		t.Errorf("link 0 qdisc should not be an ABC router (only Cubic enters it)")
	}
}

// TestMultiHopCrossTraffic: cross flows that enter and leave the chain
// mid-path must deliver through exactly their spans, with no unrouted
// packets, and must contend with the main flow on the shared hop.
func TestMultiHopCrossTraffic(t *testing.T) {
	res, _, err := Run(Spec{
		Seed:     1,
		Duration: 10 * sim.Second,
		Warmup:   2 * sim.Second,
		RTT:      60 * sim.Millisecond,
		Links: []LinkSpec{
			{Rate: netem.ConstRate(30e6), Qdisc: QdiscSpec{Kind: "droptail", Buffer: 200}},
			{Rate: netem.ConstRate(12e6), Qdisc: QdiscSpec{Kind: "droptail", Buffer: 100}},
			{Rate: netem.ConstRate(30e6), Qdisc: QdiscSpec{Kind: "droptail", Buffer: 200}},
		},
		Flows: []FlowSpec{
			{Scheme: "Cubic"},                        // full path
			{Scheme: "Cubic", EnterAt: 1, ExitAt: 2}, // middle hop only
			{Scheme: "Cubic", EnterAt: 2},            // last hop only
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Drops != 0 {
		t.Fatalf("unrouted drops = %d, want 0", res.Drops)
	}
	for i := range res.Flows {
		if res.Flows[i].Bytes == 0 {
			t.Errorf("flow %d delivered no bytes", i)
		}
	}
	// Flows 0 and 1 share the 12 Mbit/s middle hop: together they cannot
	// exceed it, and both must get a nontrivial share.
	sum01 := res.Flows[0].TputMbps + res.Flows[1].TputMbps
	if sum01 > 13 {
		t.Errorf("flows sharing the 12 Mbit/s hop sum to %.1f Mbit/s", sum01)
	}
	if res.Flows[1].TputMbps < 1 {
		t.Errorf("cross flow on the middle hop starved: %.2f Mbit/s", res.Flows[1].TputMbps)
	}
	// Flow 2 only crosses the uncongested 30 Mbit/s hop and must do much
	// better than the bottlenecked flows.
	if res.Flows[2].TputMbps < res.Flows[0].TputMbps {
		t.Errorf("flow 2 (%.1f) should beat flow 0 (%.1f): it skips the bottleneck",
			res.Flows[2].TputMbps, res.Flows[0].TputMbps)
	}
}

// flowDigest is the gob-comparable core of a flow result.
type flowDigest struct {
	Scheme      string
	Bytes       int64
	TputMbps    float64
	MeanMs      float64
	P95Ms       float64
	QP95Ms      float64
	Lost, Retx  int64
	Drops       int64
	ImpairDrops int64
	PooledMean  float64
	PooledP95   float64
	Utilization float64
}

// digest flattens a result for byte-identical comparison.
func digest(res *Result, pooledMean, pooledP95 float64) []flowDigest {
	out := make([]flowDigest, len(res.Flows))
	for i := range res.Flows {
		f := &res.Flows[i]
		out[i] = flowDigest{
			Scheme:      f.Scheme,
			Bytes:       f.Bytes,
			TputMbps:    f.TputMbps,
			MeanMs:      f.Delay.Mean(),
			P95Ms:       f.Delay.P95(),
			QP95Ms:      f.QDelay.P95(),
			Lost:        f.Lost,
			Retx:        f.Retx,
			Drops:       res.Drops,
			ImpairDrops: res.ImpairDrops,
			PooledMean:  pooledMean,
			PooledP95:   pooledP95,
			Utilization: res.Utilization,
		}
	}
	return out
}

// reverseCongestedSpec is the determinism regression scenario: a downlink
// trace bottleneck, a congested and impaired reverse path, heterogeneous
// per-flow RTTs and a reverse-direction cross flow.
func reverseCongestedSpec() Spec {
	return Spec{
		// Seed 3 (not 7): the per-edge name-seeded impairment RNG changed
		// which seeds overflow the 50-packet reverse buffer, and the test
		// below asserts visible ACK drops.
		Seed:     3,
		Duration: 8 * sim.Second,
		Warmup:   2 * sim.Second,
		RTT:      100 * sim.Millisecond,
		Links:    []LinkSpec{{Trace: trace.MustNamedCellular("Verizon1")}},
		ReverseLinks: []LinkSpec{{
			Rate:  netem.ConstRate(2e6),
			Qdisc: QdiscSpec{Kind: "droptail", Buffer: 50},
			Impair: topo.Impairments{
				LossRate: 0.02,
				Jitter:   3 * sim.Millisecond,
			},
		}},
		Flows: []FlowSpec{
			{Scheme: "ABC", RTT: 60 * sim.Millisecond},
			{Scheme: "Cubic", RTT: 140 * sim.Millisecond},
			{Scheme: "Cubic", Dir: Reverse},
		},
	}
}

// TestReverseCongestedDeterminism: a fixed seed must give byte-identical
// results for the reverse-path-congested scenario, run to run.
func TestReverseCongestedDeterminism(t *testing.T) {
	var blobs [][]byte
	for run := 0; run < 2; run++ {
		res, pooled, err := Run(reverseCongestedSpec())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(digest(res, pooled.Mean(), pooled.P95())); err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, buf.Bytes())
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Fatal("reverse-congested runs with the same seed are not byte-identical")
	}
}

// TestReverseFlowActuallyCongests: the reverse cross flow must measurably
// degrade the forward direction versus an idle reverse path, and the
// congestion must be visible on the reverse link itself (ACK drops).
func TestReverseFlowActuallyCongests(t *testing.T) {
	spec := reverseCongestedSpec()
	with, _, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Flows = spec.Flows[:2] // drop the reverse cross flow
	spec.ReverseLinks[0].Impair = topo.Impairments{}
	without, _, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	fwdWith := with.Flows[0].Bytes + with.Flows[1].Bytes
	fwdWithout := without.Flows[0].Bytes + without.Flows[1].Bytes
	if fwdWith >= fwdWithout {
		t.Errorf("reverse congestion had no aggregate effect: %d bytes with vs %d without",
			fwdWith, fwdWithout)
	}
	if with.Flows[2].Bytes == 0 {
		t.Error("reverse-direction flow delivered nothing")
	}
	ackDrops := func(r *Result) int64 {
		dt, ok := r.ReverseQdiscs[0].(*qdisc.DropTail)
		if !ok {
			t.Fatalf("reverse qdisc is %T, want droptail", r.ReverseQdiscs[0])
		}
		return dt.Stats.DroppedPackets
	}
	if d := ackDrops(with); d == 0 {
		t.Error("congested reverse link recorded no drops")
	}
	if d := ackDrops(without); d != 0 {
		t.Errorf("idle reverse link recorded %d drops", d)
	}
}

// TestScenarioFilesCompileAndRun: every example scenario file must parse,
// compile and (briefly) run without unrouted drops.
func TestScenarioFilesCompileAndRun(t *testing.T) {
	paths, err := filepath.Glob("../../examples/scenarios/*.json")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no example scenarios found: %v", err)
	}
	for _, path := range paths {
		sc, err := LoadScenario(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		spec, err := sc.Compile()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		spec.Duration = 3 * sim.Second
		spec.Warmup = sim.Second
		for i := range spec.Flows {
			if spec.Flows[i].Stop > spec.Duration {
				spec.Flows[i].Stop = 0
			}
			if spec.Flows[i].Start >= spec.Duration {
				spec.Flows[i].Start = 0
			}
		}
		res, _, err := Run(spec)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if res.Drops != 0 {
			t.Errorf("%s: %d unrouted drops", path, res.Drops)
		}
	}
}

// TestDemuxDropSurfaced: a stray flow id injected into the data chain
// must show up in Result.Drops rather than vanish. The injection models
// exactly the class of wiring bug the counter exists to catch (a flow
// id with no routed path).
func TestDemuxDropSurfaced(t *testing.T) {
	spec := Spec{
		Seed:     1,
		Duration: 2 * sim.Second,
		Links:    []LinkSpec{{Rate: netem.ConstRate(10e6)}},
		Flows:    []FlowSpec{{Scheme: "Cubic"}},
	}
	// Clean run first: no drops.
	res, _, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Drops != 0 {
		t.Fatalf("clean run has %d unrouted drops", res.Drops)
	}
	// Now inject packets of an unrouted flow id into the bottleneck via
	// the compiled graph: they traverse the link, reach the next
	// junction, find no route, and must be counted.
	spec.Sample = 500 * sim.Millisecond
	injected := 0
	spec.Probe = func(now sim.Time, r *Result) {
		r.Graph.Entry(0).Recv(packet.NewData(99, int64(injected), packet.MTU, now))
		injected++
	}
	res, _, err = Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if injected == 0 {
		t.Fatal("probe never fired")
	}
	// Strays injected near the end of the run may still be queued at the
	// bottleneck when the clock stops, so the exact count is load-timing
	// dependent; what matters is that delivered strays are counted, not
	// silently released.
	if res.Drops < 1 || res.Drops > int64(injected) {
		t.Fatalf("Result.Drops = %d, want within [1, %d]", res.Drops, injected)
	}
}
