// Fig. 12: ABC's max-min weight policy versus RCP's Zombie-List policy
// when long-running ABC and Cubic flows share a 96 Mbit/s dual-queue
// bottleneck with Poisson arrivals of short (10 KB) Cubic flows at
// several offered loads. This experiment needs dynamically created flows,
// so it builds its topo.Graph directly rather than through the Spec
// harness.
package exp

import (
	"fmt"
	"math"

	"abc/internal/cc"
	"abc/internal/netem"
	"abc/internal/packet"
	"abc/internal/qdisc"
	"abc/internal/sim"
	"abc/internal/topo"
)

// Fig12Point is one (policy, load) cell.
type Fig12Point struct {
	Policy      string
	OfferedLoad float64 // fraction of link capacity offered as shorts
	// ABCMean/CubicMean are the mean long-flow throughputs (Mbit/s)
	// and the Stds their standard deviations across flows and runs.
	ABCMean, ABCStd     float64
	CubicMean, CubicStd float64
}

// Fig12Config sizes the experiment; the paper uses 10 runs of 40 s each,
// which the benchmarks scale down.
type Fig12Config struct {
	Runs     int
	Duration sim.Time
	Loads    []float64 // fractions of the 96 Mbit/s link
	Seed     int64
}

// DefaultFig12Config mirrors the paper's setup.
func DefaultFig12Config() Fig12Config {
	return Fig12Config{
		Runs:     10,
		Duration: 40 * sim.Second,
		Loads:    []float64{0.0625, 0.125, 0.25, 0.50},
		Seed:     1,
	}
}

// Fig12WeightPolicy runs the experiment for one policy ("maxmin" or
// "zombie") and returns one point per offered load.
func Fig12WeightPolicy(policy string, cfg Fig12Config) ([]Fig12Point, error) {
	if cfg.Runs <= 0 {
		cfg.Runs = 10
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 40 * sim.Second
	}
	if len(cfg.Loads) == 0 {
		cfg.Loads = []float64{0.0625, 0.125, 0.25, 0.50}
	}
	// Every (load, run) cell is an independent simulation; fan them all
	// out and aggregate per load afterwards, preserving run order so the
	// concatenated rate vectors match a sequential sweep byte for byte.
	type cellOut struct{ abc, cubic []float64 }
	cells := make([]cellOut, len(cfg.Loads)*cfg.Runs)
	err := forEachCell(len(cells), func(i int) string {
		li, run := i/cfg.Runs, i%cfg.Runs
		return fmt.Sprintf("fig12 policy=%s load=%g run=%d seed=%d", policy, cfg.Loads[li], run, cfg.Seed+int64(run)*97)
	}, func(i int) error {
		li, run := i/cfg.Runs, i%cfg.Runs
		a, c, err := fig12Run(policy, cfg.Loads[li], cfg.Duration, cfg.Seed+int64(run)*97)
		cells[i] = cellOut{abc: a, cubic: c}
		return err
	})
	if err != nil {
		return nil, err
	}
	out := make([]Fig12Point, 0, len(cfg.Loads))
	for li, load := range cfg.Loads {
		var abcRates, cubicRates []float64
		for run := 0; run < cfg.Runs; run++ {
			cell := cells[li*cfg.Runs+run]
			abcRates = append(abcRates, cell.abc...)
			cubicRates = append(cubicRates, cell.cubic...)
		}
		pt := Fig12Point{Policy: policy, OfferedLoad: load}
		pt.ABCMean, pt.ABCStd = meanStd(abcRates)
		pt.CubicMean, pt.CubicStd = meanStd(cubicRates)
		out = append(out, pt)
	}
	return out, nil
}

func meanStd(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var v float64
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(v / float64(len(xs)))
}

// fig12Run executes one 96 Mbit/s dual-queue run with 3 ABC + 3 Cubic
// long flows and Poisson short Cubic flows at the offered load, returning
// the long flows' throughputs in Mbit/s. The experiment needs flows
// created mid-run, so it builds its topo.Graph directly instead of going
// through the Spec harness; routes for the short flows are installed on
// the same graph as they arrive.
func fig12Run(policy string, load float64, dur sim.Time, seed int64) (abcT, cubicT []float64, err error) {
	const linkBps = 96e6
	const shortBytes = 10 * 1024
	const warmup = 4 * sim.Second

	s := sim.New(seed)
	qd, err := qdisc.Build(qdisc.BuildSpec{Kind: "dual-" + policy})
	if err != nil {
		return nil, nil, err
	}

	// Two-node graph: the bottleneck edge carries data left to right, a
	// pure-delay edge carries ACKs back.
	g := topo.New(s)
	attachObs(g)
	lhs, rhs := g.AddNode("lhs"), g.AddNode("rhs")
	dataEdge, err := g.AddEdge("data", lhs, rhs, 50*sim.Millisecond, topo.Impairments{},
		func(dst packet.Node) (topo.Link, error) {
			return netem.NewRateLink(s, netem.ConstRate(linkBps), qd, dst), nil
		})
	if err != nil {
		return nil, nil, err
	}
	ackEdge, err := g.AddEdge("ack", rhs, lhs, 50*sim.Millisecond, topo.Impairments{}, nil)
	if err != nil {
		return nil, nil, err
	}

	// attach wires one flow onto the graph: data over the bottleneck
	// edge, ACKs over the return edge.
	attach := func(id int, scheme string) (*cc.Endpoint, *netem.Receiver, error) {
		alg, aerr := NewAlgorithm(scheme)
		if aerr != nil {
			return nil, nil, aerr
		}
		ep := cc.NewEndpoint(s, id, nil, alg)
		if rec := g.Recorder(); rec != nil {
			ep.SetObs(rec, int32(id))
		}
		ackEntry, aerr := g.RouteFlow(id, true, []int{ackEdge}, 0, ep)
		if aerr != nil {
			return nil, nil, aerr
		}
		recv := netem.NewReceiver(s, id, ackEntry)
		dataEntry, aerr := g.RouteFlow(id, false, []int{dataEdge}, 0, recv)
		if aerr != nil {
			return nil, nil, aerr
		}
		ep.Out = dataEntry
		return ep, recv, nil
	}

	// Long flows: ids 0..5 (0-2 ABC, 3-5 Cubic).
	longBytes := make([]int64, 6)
	for i := 0; i < 6; i++ {
		scheme := "ABC"
		if i >= 3 {
			scheme = "Cubic"
		}
		ep, recv, aerr := attach(i, scheme)
		if aerr != nil {
			return nil, nil, aerr
		}
		idx := i
		recv.OnData = func(now sim.Time, p *packet.Packet) {
			if now >= warmup {
				longBytes[idx] += int64(p.Size)
			}
		}
		ep.Start()
	}

	// Poisson short Cubic flows.
	arrivalRate := load * linkBps / (shortBytes * 8) // flows/sec
	nextID := 100
	var schedErr error
	var schedule func()
	schedule = func() {
		gap := sim.FromSeconds(expRand(s, arrivalRate))
		s.After(gap, func() {
			if s.Now() >= dur {
				return
			}
			id := nextID
			nextID++
			ep, _, aerr := attach(id, "Cubic")
			if aerr != nil {
				// Surface after the run: dropping the offered load on
				// the floor would corrupt the experiment silently.
				if schedErr == nil {
					schedErr = aerr
				}
				return
			}
			ep.Src = cc.NewFixed(shortBytes)
			ep.OnComplete = func(now sim.Time) { ep.Stop() }
			ep.Start()
			schedule()
		})
	}
	if arrivalRate > 0 {
		schedule()
	}

	s.RunUntil(dur)
	if schedErr != nil {
		return nil, nil, schedErr
	}

	span := (dur - warmup).Seconds()
	for i := 0; i < 6; i++ {
		mbps := float64(longBytes[i]) * 8 / span / 1e6
		if i < 3 {
			abcT = append(abcT, mbps)
		} else {
			cubicT = append(cubicT, mbps)
		}
	}
	return abcT, cubicT, nil
}

// expRand draws an exponential inter-arrival time with the given rate.
func expRand(s *sim.Simulator, rate float64) float64 {
	if rate <= 0 {
		return math.MaxFloat64
	}
	return s.Rand().ExpFloat64() / rate
}
