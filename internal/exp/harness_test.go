package exp

import (
	"testing"

	"abc/internal/sim"
	"abc/internal/trace"
)

// runScheme runs one backlogged flow of the scheme over a short cellular
// trace and returns its summary.
func runScheme(t *testing.T, scheme string, dur sim.Time) (util, meanMs, p95Ms float64) {
	t.Helper()
	tr := trace.MustNamedCellular("Verizon1")
	spec := Spec{
		Seed:     1,
		Duration: dur,
		Warmup:   3 * sim.Second,
		RTT:      100 * sim.Millisecond,
		Links:    []LinkSpec{{Trace: tr}},
		Flows:    []FlowSpec{{Scheme: scheme}},
	}
	res, pooled, err := Run(spec)
	if err != nil {
		t.Fatalf("Run(%s): %v", scheme, err)
	}
	return res.Utilization, pooled.Mean(), pooled.P95()
}

func TestHarnessABCBasic(t *testing.T) {
	util, mean, p95 := runScheme(t, "ABC", 20*sim.Second)
	t.Logf("ABC: util=%.2f mean=%.0fms p95=%.0fms", util, mean, p95)
	if util < 0.5 {
		t.Errorf("ABC utilization %.2f too low", util)
	}
	if util > 1.05 {
		t.Errorf("ABC utilization %.2f above capacity", util)
	}
	if p95 > 600 {
		t.Errorf("ABC p95 delay %.0f ms too high", p95)
	}
	if mean <= 0 {
		t.Errorf("no delay samples recorded")
	}
}

func TestHarnessCubicBuffers(t *testing.T) {
	utilC, _, p95C := runScheme(t, "Cubic", 20*sim.Second)
	t.Logf("Cubic: util=%.2f p95=%.0fms", utilC, p95C)
	if utilC < 0.7 {
		t.Errorf("Cubic utilization %.2f too low", utilC)
	}
	// Cubic should bufferbloat: delays well above the propagation RTT.
	if p95C < 150 {
		t.Errorf("Cubic p95 %.0f ms suspiciously low for a deep buffer", p95C)
	}
}
