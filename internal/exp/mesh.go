// Mesh compilation: a Spec whose topology is Nodes/Edges instead of
// Links/ReverseLinks describes an arbitrary directed multigraph — named
// junctions, named edges between them (each carrying a full LinkSpec, or
// Kind "wire" for a pure propagation hop) — and every flow routes its
// data and its ACKs over explicit edge-name sequences (FlowSpec.Path /
// AckPath). Because ACK paths are real routes over real edges, a reverse
// edge can host an ABC router or a marking qdisc, and the accel/brake
// echo a receiver stamps onto its ACKs (packet.NewAck) is subject to
// demotion there exactly like forward-path data marks — the sender ends
// up pacing to the minimum of marks over the whole round trip.
//
// Route well-formedness is validated before any wiring happens
// (topo.Graph.CheckPath): unknown edges, non-contiguous sequences and
// routes that revisit a junction are Spec errors, not silent drops.
package exp

import (
	"fmt"
	"slices"

	"abc/internal/metrics"
	"abc/internal/qdisc"
	"abc/internal/sim"
	"abc/internal/topo"
	"abc/internal/trace"
)

// runMesh compiles and executes a mesh-form Spec. Defaults have already
// been applied by Run.
func runMesh(spec Spec) (*Result, *metrics.DelayRecorder, error) {
	if len(spec.Links) > 0 || len(spec.ReverseLinks) > 0 {
		return nil, nil, fmt.Errorf("exp: Links/ReverseLinks (chain) and Nodes/Edges (mesh) are mutually exclusive")
	}
	if len(spec.Nodes) == 0 {
		return nil, nil, fmt.Errorf("exp: mesh spec has edges but no nodes")
	}
	if len(spec.Edges) == 0 {
		return nil, nil, fmt.Errorf("exp: mesh spec has nodes but no edges")
	}
	if len(spec.Flows) == 0 && len(spec.Workloads) == 0 {
		return nil, nil, fmt.Errorf("exp: no flows in spec")
	}

	res := &Result{Spec: spec, adv: newAdvCollector(&spec)}
	pooled := &metrics.DelayRecorder{}
	g, err := meshGraph(&spec)
	if err != nil {
		return nil, nil, err
	}
	s := g.S
	res.Graph = g
	attachObs(g)

	nodeID := make(map[string]int, len(spec.Nodes))
	for _, name := range spec.Nodes {
		if name == "" {
			return nil, nil, fmt.Errorf("exp: empty node name")
		}
		if _, dup := nodeID[name]; dup {
			return nil, nil, fmt.Errorf("exp: duplicate node %q", name)
		}
		nodeID[name] = g.AddNode(name)
	}

	edgeID := make(map[string]int, len(spec.Edges))
	res.EdgeQdiscs = make(map[string]qdisc.Qdisc, len(spec.Edges))
	var firstQ qdisc.Qdisc
	var firstCap func(now sim.Time) float64
	for i := range spec.Edges {
		es := &spec.Edges[i]
		if es.Name == "" {
			return nil, nil, fmt.Errorf("exp: edges[%d]: missing name", i)
		}
		if _, dup := edgeID[es.Name]; dup {
			return nil, nil, fmt.Errorf("exp: duplicate edge %q", es.Name)
		}
		from, ok := nodeID[es.From]
		if !ok {
			return nil, nil, fmt.Errorf("exp: edge %q: unknown node %q", es.Name, es.From)
		}
		to, ok := nodeID[es.To]
		if !ok {
			return nil, nil, fmt.Errorf("exp: edge %q: unknown node %q", es.Name, es.To)
		}
		ls := &es.Link
		var mk topo.LinkFactory
		if ls.wire() {
			if ls.Trace != nil || ls.Rate != nil || ls.Wifi != nil {
				return nil, nil, fmt.Errorf("exp: edge %q: wire edges carry no bottleneck model", es.Name)
			}
			if ls.Qdisc != (QdiscSpec{}) {
				return nil, nil, fmt.Errorf("exp: edge %q: wire edges have no qdisc", es.Name)
			}
		} else {
			kind, err := ls.kind()
			if err != nil {
				return nil, nil, fmt.Errorf("exp: edge %q: %v", es.Name, err)
			}
			// The bottleneck schedules on the feeding junction's shard.
			fromSim := g.SimFor(from)
			qd, err := ls.Qdisc.build(meshAutoScheme(&spec, es.Name), fromSim)
			if err != nil {
				return nil, nil, fmt.Errorf("exp: edge %q: %v", es.Name, err)
			}
			mk, err = linkFactory(fromSim, ls, kind, qd)
			if err != nil {
				return nil, nil, fmt.Errorf("exp: edge %q: %v", es.Name, err)
			}
			res.EdgeQdiscs[es.Name] = qd
			res.Qdiscs = append(res.Qdiscs, qd)
			if firstQ == nil {
				firstQ = qd
				firstCap = capacityFn(ls)
			}
		}
		id, err := g.AddEdge(es.Name, from, to, ls.Delay, ls.Impair, mk)
		if err != nil {
			return nil, nil, err
		}
		if ls.Attack != nil {
			if err := ls.Attack.Validate(); err != nil {
				return nil, nil, fmt.Errorf("exp: edge %q: %v", es.Name, err)
			}
			g.Edge(id).SetAttack(ls.Attack)
		}
		edgeID[es.Name] = id
	}

	routes := make([]flowRoute, len(spec.Flows))
	for i := range spec.Flows {
		fs := &spec.Flows[i]
		if fs.Dir != Forward || fs.EnterAt != 0 || fs.ExitAt != 0 {
			return nil, nil, fmt.Errorf("exp: flow %d: Dir/EnterAt/ExitAt are chain fields; mesh flows route via Path/AckPath", i)
		}
		r, err := meshRoute(g, edgeID, fs.Path, fs.AckPath, fmt.Sprintf("flow %d", i))
		if err != nil {
			return nil, nil, err
		}
		routes[i] = r
	}
	wroutes := make([]flowRoute, len(spec.Workloads))
	for i := range spec.Workloads {
		ws := &spec.Workloads[i]
		if ws.Dir != Forward || ws.EnterAt != 0 || ws.ExitAt != 0 {
			return nil, nil, fmt.Errorf("exp: workload %d: Dir/EnterAt/ExitAt are chain fields; mesh workloads route via Path/AckPath", i)
		}
		r, err := meshRoute(g, edgeID, ws.Path, ws.AckPath, fmt.Sprintf("workload %d", i))
		if err != nil {
			return nil, nil, err
		}
		wroutes[i] = r
	}
	if err := wireFlows(g, &spec, res, pooled, routes); err != nil {
		return nil, nil, err
	}
	runners, err := startWorkloads(s, g, &spec, res, pooled, wroutes)
	if err != nil {
		return nil, nil, err
	}
	if err := scheduleEvents(s, g, &spec, res, edgeID); err != nil {
		return nil, nil, err
	}
	if err := startBackgrounds(g, &spec, res, edgeID); err != nil {
		return nil, nil, err
	}
	if err := startRouting(g, &spec, res); err != nil {
		return nil, nil, err
	}

	runAndMeasure(g, &spec, res, pooled, firstQ, firstCap)
	if err := finishWorkloads(runners); err != nil {
		return nil, nil, err
	}

	// Utilization against the tightest trace edge, counting only flows
	// whose data path traverses it (the mesh analogue of the chain rule).
	tightestTraceUtilization(&spec, res, len(spec.Edges),
		func(ei int) *trace.Trace { return spec.Edges[ei].Link.Trace },
		func(f, ei int) bool {
			return slices.Contains(spec.Flows[f].Path, spec.Edges[ei].Name)
		},
		func(w, ei int) bool {
			return slices.Contains(spec.Workloads[w].Path, spec.Edges[ei].Name)
		})
	return res, pooled, nil
}

// meshRoute resolves one data/ACK path pair over named edges and checks
// their well-formedness, including that a non-empty ACK route picks up
// where the data route ends: ACKs are generated by the receiver at the
// data path's terminal node, so a disconnected AckPath would teleport
// them. The ACK route may end anywhere, though — it models the congested
// or marked segment of the return journey, and whatever remains after
// its last edge is the same implicit lossless wire an empty AckPath uses
// for the whole reverse path (RouteFlow's tail delay carries the
// residual RTT).
func meshRoute(g *topo.Graph, edgeID map[string]int, path, ackPath []string, what string) (flowRoute, error) {
	if len(path) == 0 {
		return flowRoute{}, fmt.Errorf("exp: %s: mesh flows need a Path", what)
	}
	data, err := resolvePath(g, edgeID, path, what, "path")
	if err != nil {
		return flowRoute{}, err
	}
	ack, err := resolvePath(g, edgeID, ackPath, what, "ack path")
	if err != nil {
		return flowRoute{}, err
	}
	if len(ack) > 0 {
		recv := g.Edge(data[len(data)-1]).To
		if first := g.Edge(ack[0]).From; first != recv {
			return flowRoute{}, fmt.Errorf("exp: %s: ack path starts at node %q but data path ends at %q",
				what, first.Name, recv.Name)
		}
	}
	return flowRoute{data: data, ack: ack}, nil
}

// resolvePath maps a sequence of edge names to edge ids and validates
// route well-formedness up front, so a malformed mesh route fails as a
// Spec error before any wiring happens.
func resolvePath(g *topo.Graph, edgeID map[string]int, names []string, owner, what string) ([]int, error) {
	if len(names) == 0 {
		return nil, nil
	}
	ids := make([]int, len(names))
	for j, name := range names {
		id, ok := edgeID[name]
		if !ok {
			return nil, fmt.Errorf("exp: %s %s: unknown edge %q", owner, what, name)
		}
		ids[j] = id
	}
	if err := g.CheckPath(ids); err != nil {
		return nil, fmt.Errorf("exp: %s %s %v", owner, what, err)
	}
	return ids, nil
}

// meshAutoScheme picks the deriving scheme for an "auto" qdisc on a mesh
// edge: the first flow whose data path traverses it, else the first
// workload's, else the first flow (then workload) whose ACK path does (a
// reverse-path router serves the flows whose echoes it carries).
func meshAutoScheme(spec *Spec, edge string) string {
	for f := range spec.Flows {
		if slices.Contains(spec.Flows[f].Path, edge) {
			return spec.Flows[f].Scheme
		}
	}
	for w := range spec.Workloads {
		if slices.Contains(spec.Workloads[w].Path, edge) {
			return spec.Workloads[w].Scheme
		}
	}
	for f := range spec.Flows {
		if slices.Contains(spec.Flows[f].AckPath, edge) {
			return spec.Flows[f].Scheme
		}
	}
	for w := range spec.Workloads {
		if slices.Contains(spec.Workloads[w].AckPath, edge) {
			return spec.Workloads[w].Scheme
		}
	}
	return ""
}
