// Sharded compilation: Spec.Shards > 1 splits the simulation into
// per-shard event queues advanced in parallel by a sim.Coordinator
// (conservative lookahead synchronization; see internal/sim/shard.go).
// This file owns the spec-level plumbing: which specs are shardable,
// how a spec's topology becomes a partitioner input, and how per-flow
// metrics are pooled deterministically after a sharded run.
//
// Placement rules the compilers follow:
//   - A junction lives on the shard the partitioner assigns it
//     (topo.Partition: zero-delay edges are never cut, Spec.ShardMap
//     pins nodes manually).
//   - A flow's endpoint lives with its data route's origin junction and
//     its receiver with the data route's last junction, because both
//     inject packets synchronously into their neighbor.
//   - A receiver also injects ACKs synchronously into the ACK route's
//     origin junction, so that junction must share the receiver's
//     shard. Mesh specs guarantee it structurally (the ACK path starts
//     where the data path ends); chain specs get a synthetic zero-delay
//     tie between the two junctions in the partitioner input.
//
// Pooled metrics (the pooled delay recorder, adversary class recorders)
// are not written per packet in sharded mode — receivers on different
// shards would race — but merged from the per-flow recorders after the
// run, in flow order (metrics.DelayRecorder.Merge), which keeps the
// result a pure function of (spec, seed, shard count).
package exp

import (
	"fmt"

	"abc/internal/metrics"
	"abc/internal/sim"
	"abc/internal/topo"
)

// maxShards bounds Spec.Shards to something a machine could plausibly
// run; beyond this a typo is far more likely than a 128-core box.
const maxShards = 64

// checkShardable rejects spec features the sharded path does not
// support. Workloads spawn flows mid-run (route installs and harness
// RNG draws from arbitrary shard contexts); Sample/Probe time series
// interleave per-packet callbacks across flows on one clock. Both keep
// their sequential semantics at Shards <= 1.
func checkShardable(spec *Spec) error {
	if spec.Shards > maxShards {
		return fmt.Errorf("exp: Shards %d exceeds the maximum %d", spec.Shards, maxShards)
	}
	if len(spec.Workloads) > 0 {
		return fmt.Errorf("exp: Shards > 1 does not support Workloads (mid-run flow spawning is inherently cross-shard); run with Shards 1")
	}
	if spec.Sample > 0 || spec.Probe != nil {
		return fmt.Errorf("exp: Shards > 1 does not support Sample/Probe time series; run with Shards 1")
	}
	if spec.Routing != nil {
		return fmt.Errorf("exp: Shards > 1 does not support Routing (route recomputation mutates tables across shards); run with Shards 1")
	}
	return nil
}

// shardOverride translates Spec.ShardMap node names into partitioner
// node indices via the name → index mapping of the compiled topology.
func shardOverride(spec *Spec, nodeIdx map[string]int) (map[int]int, error) {
	if len(spec.ShardMap) == 0 {
		return nil, nil
	}
	o := make(map[int]int, len(spec.ShardMap))
	for name, sh := range spec.ShardMap {
		id, ok := nodeIdx[name]
		if !ok {
			return nil, fmt.Errorf("exp: ShardMap: unknown node %q", name)
		}
		o[id] = sh
	}
	return o, nil
}

// chainGraph builds the topology graph for a chain-form spec: the plain
// single-simulator graph at Shards <= 1, a partitioned one otherwise.
// Chain junctions are named (and ShardMap-addressable) as "fwd<i>" /
// "rev<i>", matching the edge naming used by event timelines.
func chainGraph(spec *Spec, spans []span) (*topo.Graph, error) {
	if spec.Shards <= 1 {
		return topo.New(sim.New(spec.Seed)), nil
	}
	if err := checkShardable(spec); err != nil {
		return nil, err
	}
	// Reproduce buildChain's node creation order: fwd0..fwdN first, then
	// rev0..revM when a reverse chain exists.
	nodeIdx := map[string]int{}
	var n int
	addChain := func(prefix string, links int) int {
		base := n
		for i := 0; i <= links; i++ {
			nodeIdx[fmt.Sprintf("%s%d", prefix, i)] = n
			n++
		}
		return base
	}
	fwdBase := addChain("fwd", len(spec.Links))
	revBase := -1
	if len(spec.ReverseLinks) > 0 {
		revBase = addChain("rev", len(spec.ReverseLinks))
	}
	var pedges []topo.PartEdge
	for i := range spec.Links {
		pedges = append(pedges, topo.PartEdge{From: fwdBase + i, To: fwdBase + i + 1, Delay: spec.Links[i].Delay})
	}
	for i := range spec.ReverseLinks {
		pedges = append(pedges, topo.PartEdge{From: revBase + i, To: revBase + i + 1, Delay: spec.ReverseLinks[i].Delay})
	}
	// Synthetic ties: each flow's receiver (at its data chain's exit
	// junction) injects ACKs synchronously into the opposite chain's
	// first junction, so the two must share a shard.
	for i := range spec.Flows {
		fs := &spec.Flows[i]
		var last, ackOrigin int
		if fs.Dir == Reverse {
			last, ackOrigin = revBase+spans[i].exit, fwdBase
		} else {
			if revBase < 0 {
				continue // direct ACK wire: no junction injection
			}
			last, ackOrigin = fwdBase+spans[i].exit, revBase
		}
		pedges = append(pedges, topo.PartEdge{From: last, To: ackOrigin, Delay: 0})
	}
	override, err := shardOverride(spec, nodeIdx)
	if err != nil {
		return nil, err
	}
	assign, err := topo.Partition(n, pedges, spec.Shards, override)
	if err != nil {
		return nil, err
	}
	return topo.NewSharded(sim.NewCoordinator(spec.Seed, spec.Shards), assign), nil
}

// meshGraph builds the topology graph for a mesh-form spec, partitioning
// spec.Nodes (in declaration order) when sharded. Node and edge name
// validation beyond what the partitioner needs stays with runMesh.
func meshGraph(spec *Spec) (*topo.Graph, error) {
	if spec.Shards <= 1 {
		return topo.New(sim.New(spec.Seed)), nil
	}
	if err := checkShardable(spec); err != nil {
		return nil, err
	}
	nodeIdx := make(map[string]int, len(spec.Nodes))
	for i, name := range spec.Nodes {
		if _, dup := nodeIdx[name]; name == "" || dup {
			// Defer to runMesh's canonical validation error.
			return topo.New(sim.New(spec.Seed)), nil
		}
		nodeIdx[name] = i
	}
	pedges := make([]topo.PartEdge, 0, len(spec.Edges))
	for i := range spec.Edges {
		es := &spec.Edges[i]
		from, ok := nodeIdx[es.From]
		if !ok {
			return nil, fmt.Errorf("exp: edge %q: unknown node %q", es.Name, es.From)
		}
		to, ok := nodeIdx[es.To]
		if !ok {
			return nil, fmt.Errorf("exp: edge %q: unknown node %q", es.Name, es.To)
		}
		pedges = append(pedges, topo.PartEdge{From: from, To: to, Delay: es.Link.Delay})
	}
	override, err := shardOverride(spec, nodeIdx)
	if err != nil {
		return nil, err
	}
	assign, err := topo.Partition(len(spec.Nodes), pedges, spec.Shards, override)
	if err != nil {
		return nil, err
	}
	return topo.NewSharded(sim.NewCoordinator(spec.Seed, spec.Shards), assign), nil
}

// poolShardedMetrics rebuilds the run-wide pooled recorders from the
// per-flow recorders after a sharded run, in flow order — the
// deterministic replacement for the per-packet pooled/adversary updates
// the sequential receivers perform inline.
func poolShardedMetrics(res *Result, pooled *metrics.DelayRecorder) {
	for i := range res.Flows {
		fr := &res.Flows[i]
		pooled.Merge(&fr.Delay)
		if res.adv != nil {
			res.adv.mergeDelay(i, &fr.Delay)
		}
	}
}
