package exp

import (
	"testing"

	"abc/internal/abc"
	"abc/internal/sim"
	"abc/internal/trace"
)

// TestFig1SeriesShape validates the Fig. 1 runner's output: all four
// schemes produce aligned throughput/queue-delay series, Cubic's worst
// queue exceeds ABC's by a wide margin, and ABC's throughput follows the
// link.
func TestFig1SeriesShape(t *testing.T) {
	runs, err := Fig1Timeseries(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 {
		t.Fatalf("schemes = %d", len(runs))
	}
	byScheme := map[string]TimeseriesRun{}
	for _, r := range runs {
		byScheme[r.Scheme] = r
		if len(r.Tput.Times) == 0 || len(r.QDelay.Times) == 0 {
			t.Fatalf("%s: empty series", r.Scheme)
		}
		for i := 1; i < len(r.Tput.Times); i++ {
			if r.Tput.Times[i] <= r.Tput.Times[i-1] {
				t.Fatalf("%s: non-monotone time axis", r.Scheme)
			}
		}
	}
	cubicMaxQ := byScheme["Cubic"].QDelay.Max()
	abcMaxQ := byScheme["ABC"].QDelay.Max()
	if cubicMaxQ < 2*abcMaxQ {
		t.Errorf("Cubic max queue %.0f ms not ≫ ABC's %.0f ms", cubicMaxQ, abcMaxQ)
	}
	if byScheme["ABC"].Summary.Utilization < 0.6 {
		t.Errorf("ABC utilization %.2f on the Fig. 1 trace", byScheme["ABC"].Summary.Utilization)
	}
}

// TestMultiBottleneckEndToEnd runs a two-ABC-router path in full and
// checks the flow converges to the tighter link's rate: the §3.1.2
// minimum rule operating through real traffic.
func TestMultiBottleneckEndToEnd(t *testing.T) {
	up := trace.Constant("up16", 16e6)
	down := trace.Constant("down8", 8e6)
	res, _, err := Run(Spec{
		Seed:     1,
		Duration: 20 * sim.Second,
		Warmup:   5 * sim.Second,
		RTT:      100 * sim.Millisecond,
		Links: []LinkSpec{
			{Trace: up, Qdisc: QdiscSpec{Kind: "abc"}},
			{Trace: down, Qdisc: QdiscSpec{Kind: "abc"}},
		},
		Flows: []FlowSpec{{Scheme: "ABC"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	tput := res.Flows[0].TputMbps
	if tput < 6.5 || tput > 8.1 {
		t.Errorf("throughput %.2f Mbit/s, want ≈ the 8 Mbit/s tighter link", tput)
	}
	// The upstream (loose) router must keep essentially no queue.
	if q := res.Qdiscs[0].(*abc.Router); q.Len() > 20 {
		t.Errorf("loose router holds %d packets", q.Len())
	}
	if res.Flows[0].QDelay.P95() > 100 {
		t.Errorf("p95 queuing %.0f ms across two ABC hops", res.Flows[0].QDelay.P95())
	}
}

// TestFeedbackCountsConsistent: over a long run the accelerates plus
// brakes received equal the valid-echo ACKs processed, and the realized
// accel fraction sits near the steady-state value 2f + 1/w = 1.
func TestFeedbackCountsConsistent(t *testing.T) {
	tr := trace.Constant("c", 12e6)
	res, _, err := Run(Spec{
		Seed: 1, Duration: 20 * sim.Second, RTT: 100 * sim.Millisecond,
		Links: []LinkSpec{{Trace: tr}},
		Flows: []FlowSpec{{Scheme: "ABC"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Flows[0].Algorithm.(*abc.Sender)
	total := s.Accels + s.Brakes
	if total == 0 {
		t.Fatal("no feedback received")
	}
	frac := float64(s.Accels) / float64(total)
	// Steady state: 2f + 1/w = 1 with w ≈ BDP ≈ 100 pkts → f ≈ 0.495.
	if frac < 0.42 || frac > 0.56 {
		t.Errorf("accel fraction %.3f far from steady-state ~0.5", frac)
	}
}

// TestLTETraceProperties pins the Fig. 1 trace's character: it must both
// collapse and surge within the 30 s window.
func TestLTETraceProperties(t *testing.T) {
	tr := LTETrace()
	lo, hi := 1e18, 0.0
	for at := sim.Second; at < 30*sim.Second; at += 500 * sim.Millisecond {
		r := tr.CapacityBps(at, 500*sim.Millisecond)
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if hi < 4*(lo+1e5) {
		t.Errorf("LTE trace range %.1f-%.1f Mbit/s lacks the 4x swings", lo/1e6, hi/1e6)
	}
}
