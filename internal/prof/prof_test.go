package prof

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStartStopWritesProfiles: the full capture set produces non-empty
// CPU, heap and trace files.
func TestStartStopWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Pprof: filepath.Join(dir, "run"),
		Trace: filepath.Join(dir, "run.trace"),
	}
	stop, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A little work so the captures have something to record.
	s := 0
	for i := 0; i < 1e6; i++ {
		s += i
	}
	_ = s
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cfg.Pprof + ".cpu.pprof", cfg.Pprof + ".heap.pprof", cfg.Trace} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("missing capture %s: %v", p, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("empty capture %s", p)
		}
	}
}

// TestStartNothing: an empty config is a no-op pair.
func TestStartNothing(t *testing.T) {
	stop, err := Start(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

// TestStartBadPath: an uncreatable output path fails at Start, leaving
// nothing running (a second Start must succeed).
func TestStartBadPath(t *testing.T) {
	if _, err := Start(Config{Trace: filepath.Join(t.TempDir(), "no", "such", "dir", "t")}); err == nil {
		t.Fatal("want error for uncreatable trace path")
	}
	if _, err := Start(Config{Pprof: filepath.Join(t.TempDir(), "no", "such", "dir", "p")}); err == nil {
		t.Fatal("want error for uncreatable profile path")
	}
	stop, err := Start(Config{})
	if err != nil {
		t.Fatalf("profiling left running after failed Start: %v", err)
	}
	stop()
}
