// Package prof bundles the runtime's profiling and tracing facilities
// into one start/stop pair for the command-line binaries: a CPU profile
// with an exit-time heap snapshot, and a runtime execution trace. The
// sharded simulator is the main customer — `go tool trace` on a capture
// shows the per-shard worker goroutines, the synchronization barriers
// between time windows, and any shard starving its neighbors — but the
// hooks profile any abcsim/abcreport invocation.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Config names the captures to run. Empty fields disable the capture.
type Config struct {
	// Pprof is a path prefix: the CPU profile goes to <Pprof>.cpu.pprof
	// and a heap snapshot (taken at stop time, after a GC) to
	// <Pprof>.heap.pprof.
	Pprof string
	// Trace is the runtime execution trace output file, viewable with
	// `go tool trace`.
	Trace string
}

// Start begins the configured captures and returns the function that
// finishes them: it stops the CPU profile, writes the heap snapshot and
// flushes the trace. Call it exactly once, after the workload ran. On a
// Start error nothing is left running and no stop call is needed.
func Start(cfg Config) (stop func() error, err error) {
	var cpuFile, traceFile *os.File
	abort := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
	}
	if cfg.Pprof != "" {
		cpuFile, err = os.Create(cfg.Pprof + ".cpu.pprof")
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	if cfg.Trace != "" {
		traceFile, err = os.Create(cfg.Trace)
		if err != nil {
			abort()
			return nil, err
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Close()
			traceFile = nil
			abort()
			return nil, fmt.Errorf("runtime trace: %w", err)
		}
	}
	return func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				firstErr = err
			}
			// Heap snapshot after a GC so the profile shows live memory,
			// not garbage awaiting collection.
			runtime.GC()
			hf, err := os.Create(cfg.Pprof + ".heap.pprof")
			if err == nil {
				err = pprof.WriteHeapProfile(hf)
				if cerr := hf.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("heap profile: %w", err)
			}
		}
		if traceFile != nil {
			trace.Stop()
			if err := traceFile.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}, nil
}
