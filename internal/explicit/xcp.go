// Package explicit implements the explicit congestion-control baselines
// the paper compares ABC against: XCP (Katabi et al. 2002), the paper's
// improved per-packet variant XCPw, RCP (Tai, Zhu, Dukkipati 2008) and
// VCP (Xia et al. 2005). Each consists of a router qdisc that computes
// feedback and a sender Algorithm that obeys it, communicating through
// the multi-bit header fields in internal/packet — the header space whose
// deployment cost motivates ABC's single-bit design.
//
// The reverse channel is not assumed lossless: receivers echo the
// multi-bit headers onto ACKs verbatim (packet.NewAck), and every router
// here applies its min/max rule to each packet it dequeues, ACKs
// included. Feedback riding an ACK through a congested reverse-path
// router is therefore tightened in flight — the multi-bit analogue of
// the accel/brake echo demotion ABC routers perform on ACK codepoints.
package explicit

import (
	"math"

	"abc/internal/cc"
	"abc/internal/packet"
	"abc/internal/qdisc"
	"abc/internal/sim"
)

// XCPConfig parameterizes an XCP router.
type XCPConfig struct {
	// Alpha and Beta are the efficiency-controller gains. The paper uses
	// 0.55 and 0.4, "the highest permissible stable values".
	Alpha, Beta float64
	// Limit bounds the queue in packets.
	Limit int
	// PerPacket enables XCPw: recompute aggregate feedback continuously
	// over a sliding window instead of once per control interval.
	PerPacket bool
	// Window is the sliding measurement window for XCPw.
	Window sim.Time
}

// DefaultXCPConfig returns the paper's XCP parameters.
func DefaultXCPConfig() XCPConfig {
	return XCPConfig{Alpha: 0.55, Beta: 0.4, Limit: 250, Window: 50 * sim.Millisecond}
}

// XCPRouter computes aggregate feedback φ = α·d·(C−y) − β·Q once per
// control interval (mean RTT) and apportions it per packet in proportion
// to each packet's byte share of the interval's traffic. Senders carry
// cwnd and RTT in the congestion header; routers only ever reduce the
// feedback field (min along the path).
type XCPRouter struct {
	Cfg   XCPConfig
	Stats qdisc.Stats

	capacity func(now sim.Time) float64

	q     []*packet.Packet
	head  int
	bytes int

	// Control-interval accounting.
	intervalStart sim.Time
	arrivedBytes  int64
	minQueueBytes int
	rttSum        sim.Time
	rttCount      int64
	meanRTT       sim.Time

	// perByte is the feedback (bytes of cwnd change per byte of packet)
	// computed for the current interval.
	perByte float64

	// Sliding-window meters for the XCPw variant.
	arrMeter *meter
}

// meter is a sliding-window byte-rate estimator.
type meter struct {
	window sim.Time
	times  []sim.Time
	bytes  []int
	sum    int64
	head   int
}

func newMeter(w sim.Time) *meter { return &meter{window: w} }

func (m *meter) add(now sim.Time, n int) {
	m.times = append(m.times, now)
	m.bytes = append(m.bytes, n)
	m.sum += int64(n)
	m.prune(now)
}

func (m *meter) prune(now sim.Time) {
	for m.head < len(m.times) && m.times[m.head] < now-m.window {
		m.sum -= int64(m.bytes[m.head])
		m.head++
	}
	if m.head > 256 && m.head*2 >= len(m.times) {
		n := copy(m.times, m.times[m.head:])
		copy(m.bytes, m.bytes[m.head:])
		m.times = m.times[:n]
		m.bytes = m.bytes[:n]
		m.head = 0
	}
}

func (m *meter) byteRate(now sim.Time) float64 {
	m.prune(now)
	return float64(m.sum) / m.window.Seconds()
}

// NewXCPRouter returns an XCP (or XCPw) router qdisc.
func NewXCPRouter(cfg XCPConfig) *XCPRouter {
	if cfg.Window <= 0 {
		cfg.Window = 50 * sim.Millisecond
	}
	return &XCPRouter{
		Cfg:           cfg,
		meanRTT:       100 * sim.Millisecond,
		minQueueBytes: math.MaxInt,
		arrMeter:      newMeter(cfg.Window),
	}
}

// SetCapacityProvider implements qdisc.CapacityAware.
func (x *XCPRouter) SetCapacityProvider(f func(now sim.Time) float64) { x.capacity = f }

func (x *XCPRouter) mu(now sim.Time) float64 {
	if x.capacity == nil {
		return 0
	}
	return x.capacity(now)
}

// Enqueue implements qdisc.Qdisc.
func (x *XCPRouter) Enqueue(now sim.Time, p *packet.Packet) bool {
	if x.Cfg.Limit > 0 && x.Len() >= x.Cfg.Limit {
		x.Stats.DroppedPackets++
		return false
	}
	if x.intervalStart == 0 {
		x.intervalStart = now
	}
	p.EnqueuedAt = now
	x.q = append(x.q, p)
	x.bytes += p.Size
	x.arrivedBytes += int64(p.Size)
	x.arrMeter.add(now, p.Size)
	if p.XCP.Valid {
		if p.XCP.RTT > 0 {
			x.rttSum += p.XCP.RTT
			x.rttCount++
		}
	}
	if x.bytes < x.minQueueBytes {
		x.minQueueBytes = x.bytes
	}
	x.Stats.EnqueuedPackets++
	x.maybeCloseInterval(now)
	return true
}

// maybeCloseInterval runs the per-interval efficiency controller.
func (x *XCPRouter) maybeCloseInterval(now sim.Time) {
	if x.Cfg.PerPacket {
		return // XCPw computes continuously in feedbackFor
	}
	d := x.meanRTT
	if now-x.intervalStart < d {
		return
	}
	dur := (now - x.intervalStart).Seconds()
	y := float64(x.arrivedBytes) / dur // input rate, bytes/sec
	c := x.mu(now) / 8                 // capacity, bytes/sec
	q := float64(x.minQueueBytes)
	if x.minQueueBytes == math.MaxInt {
		q = float64(x.bytes)
	}
	phi := x.Cfg.Alpha*d.Seconds()*(c-y) - x.Cfg.Beta*q // bytes
	if x.arrivedBytes > 0 {
		x.perByte = phi / float64(x.arrivedBytes)
	} else if c > 0 {
		x.perByte = 1 // idle link: allow growth
	}
	if x.rttCount > 0 {
		x.meanRTT = sim.Time(int64(x.rttSum) / x.rttCount)
		if x.meanRTT < 10*sim.Millisecond {
			x.meanRTT = 10 * sim.Millisecond
		}
	}
	x.intervalStart = now
	x.arrivedBytes = 0
	x.rttSum, x.rttCount = 0, 0
	x.minQueueBytes = math.MaxInt
}

// feedbackFor returns the per-packet feedback in bytes for p.
func (x *XCPRouter) feedbackFor(now sim.Time, p *packet.Packet) float64 {
	if x.Cfg.PerPacket {
		// XCPw: instantaneous aggregate feedback over the sliding
		// window, apportioned by byte share of the window's traffic.
		d := x.meanRTT
		y := x.arrMeter.byteRate(now)
		c := x.mu(now) / 8
		phi := x.Cfg.Alpha*d.Seconds()*(c-y) - x.Cfg.Beta*float64(x.bytes)
		winBytes := y * d.Seconds()
		if winBytes <= float64(p.Size) {
			winBytes = float64(p.Size)
		}
		if x.rttCount > 16 {
			x.meanRTT = sim.Time(int64(x.rttSum) / x.rttCount)
			if x.meanRTT < 10*sim.Millisecond {
				x.meanRTT = 10 * sim.Millisecond
			}
			x.rttSum, x.rttCount = 0, 0
		}
		return phi * float64(p.Size) / winBytes
	}
	return x.perByte * float64(p.Size)
}

// Dequeue implements qdisc.Qdisc.
func (x *XCPRouter) Dequeue(now sim.Time) *packet.Packet {
	if x.head >= len(x.q) {
		return nil
	}
	p := x.q[x.head]
	x.q[x.head] = nil
	x.head++
	x.bytes -= p.Size
	if x.head > 64 && x.head*2 >= len(x.q) {
		n := copy(x.q, x.q[x.head:])
		x.q = x.q[:n]
		x.head = 0
	}
	if x.bytes < x.minQueueBytes {
		x.minQueueBytes = x.bytes
	}
	if p.XCP.Valid {
		fb := x.feedbackFor(now, p)
		if fb < p.XCP.Feedback {
			p.XCP.Feedback = fb
		}
	}
	x.Stats.DequeuedPackets++
	x.Stats.DequeuedBytes += int64(p.Size)
	return p
}

// Len implements qdisc.Qdisc.
func (x *XCPRouter) Len() int { return len(x.q) - x.head }

// Bytes implements qdisc.Qdisc.
func (x *XCPRouter) Bytes() int { return x.bytes }

// XCPSender is the window-based XCP endpoint algorithm: it stamps the
// congestion header on data and applies the echoed feedback per ACK.
type XCPSender struct {
	Wireless bool // reported name XCPw when true (router does the work)

	cwndBytes float64
}

// NewXCPSender returns an XCP sender.
func NewXCPSender(wireless bool) *XCPSender {
	return &XCPSender{Wireless: wireless, cwndBytes: 4 * packet.MTU}
}

// Name implements cc.Algorithm.
func (s *XCPSender) Name() string {
	if s.Wireless {
		return "XCPw"
	}
	return "XCP"
}

// StampData implements cc.DataStamper.
func (s *XCPSender) StampData(now sim.Time, e *cc.Endpoint, p *packet.Packet) {
	rtt := e.SRTT()
	if rtt == 0 {
		rtt = 100 * sim.Millisecond
	}
	p.XCP = packet.XCPHeader{
		CwndBytes: s.cwndBytes,
		RTT:       rtt,
		// Demand: request up to one extra packet per packet, i.e. at
		// most window doubling per RTT (mirrors ABC's dynamic range).
		Feedback: packet.MTU,
		Valid:    true,
	}
}

// OnAck implements cc.Algorithm.
func (s *XCPSender) OnAck(now sim.Time, e *cc.Endpoint, info cc.AckInfo) {
	if info.AckedBytes == 0 || !info.Ack.XCP.Valid {
		return
	}
	s.cwndBytes += info.Ack.XCP.Feedback
	if s.cwndBytes < packet.MTU {
		s.cwndBytes = packet.MTU
	}
}

// OnCongestion implements cc.Algorithm: XCP treats loss as severe.
func (s *XCPSender) OnCongestion(now sim.Time, e *cc.Endpoint) {
	s.cwndBytes /= 2
	if s.cwndBytes < packet.MTU {
		s.cwndBytes = packet.MTU
	}
}

// OnRTO implements cc.Algorithm.
func (s *XCPSender) OnRTO(now sim.Time, e *cc.Endpoint) {
	s.cwndBytes = packet.MTU
}

// CwndPkts implements cc.Algorithm.
func (s *XCPSender) CwndPkts() float64 { return s.cwndBytes / packet.MTU }
