// Registry hookup for the explicit-feedback baselines: senders join the
// scheme registry paired with their router kinds, and the routers join the
// qdisc registry.
package explicit

import (
	"abc/internal/cc"
	"abc/internal/qdisc"
)

func init() {
	cc.Register(cc.Scheme{Name: "XCP", New: func() cc.Algorithm { return NewXCPSender(false) }, Qdisc: "xcp"})
	cc.Register(cc.Scheme{Name: "XCPw", New: func() cc.Algorithm { return NewXCPSender(true) }, Qdisc: "xcpw"})
	cc.Register(cc.Scheme{Name: "RCP", New: func() cc.Algorithm { return NewRCPSender() }, Qdisc: "rcp"})
	cc.Register(cc.Scheme{Name: "VCP", New: func() cc.Algorithm { return NewVCPSender() }, Qdisc: "vcp"})

	qdisc.Register("xcp", func(s qdisc.BuildSpec) (qdisc.Qdisc, error) {
		cfg := DefaultXCPConfig()
		cfg.Limit = s.Buffer
		return NewXCPRouter(cfg), nil
	})
	qdisc.Register("xcpw", func(s qdisc.BuildSpec) (qdisc.Qdisc, error) {
		cfg := DefaultXCPConfig()
		cfg.Limit = s.Buffer
		cfg.PerPacket = true
		return NewXCPRouter(cfg), nil
	})
	qdisc.Register("rcp", func(s qdisc.BuildSpec) (qdisc.Qdisc, error) {
		cfg := DefaultRCPConfig()
		cfg.Limit = s.Buffer
		return NewRCPRouter(cfg), nil
	})
	qdisc.Register("vcp", func(s qdisc.BuildSpec) (qdisc.Qdisc, error) {
		cfg := DefaultVCPConfig()
		cfg.Limit = s.Buffer
		return NewVCPRouter(cfg), nil
	})
}
