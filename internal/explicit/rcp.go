// RCP (Rate Control Protocol): the router computes a single fair rate
// R(t) and stamps it into every packet; senders pace at the minimum
// stamped rate along the path. The paper (Appendix D, Fig. 17) shows RCP's
// rate-based control reacting more slowly than ABC's window-based control
// on varying links.
package explicit

import (
	"abc/internal/cc"
	"abc/internal/packet"
	"abc/internal/qdisc"
	"abc/internal/sim"
)

// RCPConfig parameterizes an RCP router.
type RCPConfig struct {
	// Alpha and Beta are the rate-update gains; the paper uses the
	// author-specified 0.5 and 0.25.
	Alpha, Beta float64
	// Limit bounds the queue in packets.
	Limit int
}

// DefaultRCPConfig returns the paper's RCP parameters.
func DefaultRCPConfig() RCPConfig { return RCPConfig{Alpha: 0.5, Beta: 0.25, Limit: 250} }

// RCPRouter updates R once per control interval:
//
//	R ← R · (1 + (T/d)·(α·(C − y) − β·q/d) / C)
//
// and stamps min(R, header) into departing packets.
type RCPRouter struct {
	Cfg   RCPConfig
	Stats qdisc.Stats

	capacity func(now sim.Time) float64

	q     []*packet.Packet
	head  int
	bytes int

	rate          float64 // bytes/sec
	meanRTT       sim.Time
	intervalStart sim.Time
	arrivedBytes  int64
}

// NewRCPRouter returns an RCP router qdisc.
func NewRCPRouter(cfg RCPConfig) *RCPRouter {
	return &RCPRouter{Cfg: cfg, meanRTT: 100 * sim.Millisecond}
}

// SetCapacityProvider implements qdisc.CapacityAware.
func (r *RCPRouter) SetCapacityProvider(f func(now sim.Time) float64) { r.capacity = f }

func (r *RCPRouter) mu(now sim.Time) float64 {
	if r.capacity == nil {
		return 0
	}
	return r.capacity(now)
}

// Enqueue implements qdisc.Qdisc.
func (r *RCPRouter) Enqueue(now sim.Time, p *packet.Packet) bool {
	if r.Cfg.Limit > 0 && r.Len() >= r.Cfg.Limit {
		r.Stats.DroppedPackets++
		return false
	}
	if r.intervalStart == 0 {
		r.intervalStart = now
		r.rate = r.mu(now) / 8 / 2 // start at half capacity
	}
	p.EnqueuedAt = now
	r.q = append(r.q, p)
	r.bytes += p.Size
	r.arrivedBytes += int64(p.Size)
	r.Stats.EnqueuedPackets++
	r.maybeUpdate(now)
	return true
}

// maybeUpdate runs the rate controller once per mean RTT.
func (r *RCPRouter) maybeUpdate(now sim.Time) {
	d := r.meanRTT
	T := now - r.intervalStart
	if T < d/2 { // RCP updates at least every d (use d/2 for agility)
		return
	}
	c := r.mu(now) / 8
	if c <= 0 {
		r.intervalStart = now
		r.arrivedBytes = 0
		return
	}
	y := float64(r.arrivedBytes) / T.Seconds()
	q := float64(r.bytes)
	adj := (T.Seconds() / d.Seconds()) *
		(r.Cfg.Alpha*(c-y) - r.Cfg.Beta*q/d.Seconds()) / c
	r.rate *= 1 + adj
	if r.rate < float64(packet.MTU) {
		r.rate = float64(packet.MTU) // at least one packet per second
	}
	if r.rate > 2*c {
		r.rate = 2 * c
	}
	r.intervalStart = now
	r.arrivedBytes = 0
}

// Dequeue implements qdisc.Qdisc.
func (r *RCPRouter) Dequeue(now sim.Time) *packet.Packet {
	if r.head >= len(r.q) {
		return nil
	}
	p := r.q[r.head]
	r.q[r.head] = nil
	r.head++
	r.bytes -= p.Size
	if r.head > 64 && r.head*2 >= len(r.q) {
		n := copy(r.q, r.q[r.head:])
		r.q = r.q[:n]
		r.head = 0
	}
	rateBits := r.rate * 8
	if p.RCPRate == 0 || rateBits < p.RCPRate {
		p.RCPRate = rateBits
	}
	r.Stats.DequeuedPackets++
	r.Stats.DequeuedBytes += int64(p.Size)
	return p
}

// Len implements qdisc.Qdisc.
func (r *RCPRouter) Len() int { return len(r.q) - r.head }

// Bytes implements qdisc.Qdisc.
func (r *RCPRouter) Bytes() int { return r.bytes }

// RCPSender paces at the router-stamped rate.
type RCPSender struct {
	rate float64 // bits/sec
}

// NewRCPSender returns an RCP sender with a conservative initial rate.
func NewRCPSender() *RCPSender { return &RCPSender{rate: 1e6} }

// Name implements cc.Algorithm.
func (s *RCPSender) Name() string { return "RCP" }

// StampData implements cc.DataStamper: clear the rate field so routers
// along the path stamp their minimum.
func (s *RCPSender) StampData(now sim.Time, e *cc.Endpoint, p *packet.Packet) {
	p.RCPRate = 0
}

// OnAck implements cc.Algorithm. Only ACKs that acknowledge new data
// update the rate: a stale ACK (a duplicate, or one that drained late
// off an abandoned ACK path after a mid-run reroute) carries a rate the
// path it took stamped, and adopting it would let the old path's
// congestion state override what the current path is reporting.
func (s *RCPSender) OnAck(now sim.Time, e *cc.Endpoint, info cc.AckInfo) {
	if info.AckedBytes == 0 {
		return
	}
	if info.Ack.RCPRate > 0 {
		s.rate = info.Ack.RCPRate
	}
}

// OnCongestion implements cc.Algorithm.
func (s *RCPSender) OnCongestion(now sim.Time, e *cc.Endpoint) {}

// OnRTO implements cc.Algorithm.
func (s *RCPSender) OnRTO(now sim.Time, e *cc.Endpoint) { s.rate /= 2 }

// CwndPkts implements cc.Algorithm: a cap of two rate-RTT products keeps
// pathological queues bounded while pacing dominates.
func (s *RCPSender) CwndPkts() float64 {
	w := 2 * s.rate * 0.1 / 8 / packet.MTU
	if w < 4 {
		w = 4
	}
	return w
}

// PacingRate implements cc.Pacer.
func (s *RCPSender) PacingRate(now sim.Time) (float64, bool) { return s.rate, true }
