package explicit

import (
	"math"
	"testing"

	"abc/internal/cc"
	"abc/internal/packet"
	"abc/internal/sim"
)

func dataWithXCP(seq int64, cwndBytes float64, rtt sim.Time) *packet.Packet {
	p := packet.NewData(1, seq, packet.MTU, 0)
	p.XCP = packet.XCPHeader{CwndBytes: cwndBytes, RTT: rtt, Feedback: packet.MTU, Valid: true}
	return p
}

func TestXCPRouterPositiveFeedbackWhenUnderutilized(t *testing.T) {
	x := NewXCPRouter(DefaultXCPConfig())
	x.SetCapacityProvider(func(sim.Time) float64 { return 20e6 })
	now := sim.Time(0)
	// Offer 5 Mbit/s into a 20 Mbit/s link for a while.
	gap := sim.FromSeconds(float64(packet.MTU*8) / 5e6)
	var fb float64
	for i := int64(0); i < 500; i++ {
		now += gap
		x.Enqueue(now, dataWithXCP(i, 30000, 100*sim.Millisecond))
		p := x.Dequeue(now)
		if p != nil && i > 250 {
			fb = p.XCP.Feedback
		}
	}
	if fb <= 0 {
		t.Errorf("feedback %.1f should be positive on an underutilized link", fb)
	}
}

func TestXCPRouterNegativeFeedbackWhenOverloaded(t *testing.T) {
	cfg := DefaultXCPConfig()
	cfg.Limit = 0
	x := NewXCPRouter(cfg)
	x.SetCapacityProvider(func(sim.Time) float64 { return 5e6 })
	now := sim.Time(0)
	// Offer 20 Mbit/s into 5 Mbit/s: drain at capacity.
	inGap := sim.FromSeconds(float64(packet.MTU*8) / 20e6)
	var fb float64
	drain := sim.Time(0)
	for i := int64(0); i < 3000; i++ {
		now += inGap
		x.Enqueue(now, dataWithXCP(i, 30000, 100*sim.Millisecond))
		for drain < now {
			drain += sim.FromSeconds(float64(packet.MTU*8) / 5e6)
			if p := x.Dequeue(drain); p != nil && i > 1500 {
				fb = p.XCP.Feedback
			}
		}
	}
	if fb >= 0 {
		t.Errorf("feedback %.1f should be negative under overload", fb)
	}
}

func TestXCPRouterOnlyReducesFeedback(t *testing.T) {
	x := NewXCPRouter(DefaultXCPConfig())
	x.SetCapacityProvider(func(sim.Time) float64 { return 100e6 })
	p := dataWithXCP(0, 30000, 100*sim.Millisecond)
	p.XCP.Feedback = 10 // upstream router allowed only 10 bytes
	x.Enqueue(0, p)
	q := x.Dequeue(0)
	if q.XCP.Feedback > 10 {
		t.Errorf("feedback increased to %.1f along the path", q.XCP.Feedback)
	}
}

func TestXCPSenderAppliesFeedback(t *testing.T) {
	s := NewXCPSender(false)
	w0 := s.CwndPkts()
	ack := &packet.Packet{IsAck: true, XCP: packet.XCPHeader{Feedback: 3000, Valid: true}}
	s.OnAck(0, nil, cc.AckInfo{Ack: ack, AckedBytes: packet.MTU})
	if got := s.CwndPkts(); math.Abs(got-(w0+2)) > 1e-9 {
		t.Errorf("cwnd %v, want %v", got, w0+2)
	}
	// Negative feedback shrinks but never below one packet.
	ack.XCP.Feedback = -1e9
	s.OnAck(0, nil, cc.AckInfo{Ack: ack, AckedBytes: packet.MTU})
	if got := s.CwndPkts(); got != 1 {
		t.Errorf("cwnd %v, want floor 1", got)
	}
}

func TestXCPSenderNames(t *testing.T) {
	if NewXCPSender(false).Name() != "XCP" || NewXCPSender(true).Name() != "XCPw" {
		t.Error("names wrong")
	}
}

func TestXCPSenderStampsHeader(t *testing.T) {
	s := NewXCPSender(false)
	e := cc.NewEndpoint(sim.New(1), 1, packet.NodeFunc(func(*packet.Packet) {}), s)
	p := packet.NewData(1, 0, packet.MTU, 0)
	s.StampData(0, e, p)
	if !p.XCP.Valid || p.XCP.CwndBytes <= 0 || p.XCP.Feedback != packet.MTU {
		t.Errorf("header: %+v", p.XCP)
	}
}

func TestRCPRouterConvergesToCapacity(t *testing.T) {
	r := NewRCPRouter(DefaultRCPConfig())
	mu := 10e6
	r.SetCapacityProvider(func(sim.Time) float64 { return mu })
	now := sim.Time(0)
	// Single flow obeying the stamped rate: feed at the stamped rate.
	rate := 1e6
	var stamped float64
	for step := 0; step < 20000; step++ {
		gap := sim.FromSeconds(float64(packet.MTU*8) / rate)
		now += gap
		r.Enqueue(now, packet.NewData(1, int64(step), packet.MTU, now))
		if p := r.Dequeue(now); p != nil && p.RCPRate > 0 {
			stamped = p.RCPRate
			rate = p.RCPRate // the flow adopts the stamp
			if rate < 1e5 {
				rate = 1e5
			}
		}
	}
	if math.Abs(stamped-mu)/mu > 0.3 {
		t.Errorf("RCP rate %.1f Mbit/s did not converge near capacity %.1f", stamped/1e6, mu/1e6)
	}
}

func TestRCPRouterStampsMinimum(t *testing.T) {
	r := NewRCPRouter(DefaultRCPConfig())
	r.SetCapacityProvider(func(sim.Time) float64 { return 10e6 })
	p := packet.NewData(1, 0, packet.MTU, 0)
	p.RCPRate = 1000 // upstream stamped a tiny rate
	r.Enqueue(0, p)
	q := r.Dequeue(0)
	if q.RCPRate > 1000 {
		t.Errorf("rate raised to %.0f along the path", q.RCPRate)
	}
}

func TestRCPSenderPacesAtStampedRate(t *testing.T) {
	s := NewRCPSender()
	ack := &packet.Packet{IsAck: true, RCPRate: 7e6}
	s.OnAck(0, nil, cc.AckInfo{Ack: ack, AckedBytes: packet.MTU})
	rate, ok := s.PacingRate(0)
	if !ok || rate != 7e6 {
		t.Errorf("pacing %v/%v", rate, ok)
	}
	if s.CwndPkts() < 4 {
		t.Error("window cap below floor")
	}
}

// TestRCPSenderIgnoresStaleAckRate: an ACK that acknowledges nothing new
// (a duplicate, or one that drained late off an abandoned ACK path after
// a mid-run reroute) must not override the current path's stamped rate —
// otherwise the old path's congestion state poisons the new one.
func TestRCPSenderIgnoresStaleAckRate(t *testing.T) {
	s := NewRCPSender()
	fresh := &packet.Packet{IsAck: true, RCPRate: 7e6}
	s.OnAck(0, nil, cc.AckInfo{Ack: fresh, AckedBytes: packet.MTU})
	stale := &packet.Packet{IsAck: true, RCPRate: 0.2e6}
	s.OnAck(0, nil, cc.AckInfo{Ack: stale, AckedBytes: 0})
	if rate, _ := s.PacingRate(0); rate != 7e6 {
		t.Errorf("stale ACK overrode the rate: %v, want 7e6", rate)
	}
}

func TestVCPRouterLoadCodes(t *testing.T) {
	cfg := DefaultVCPConfig()
	v := NewVCPRouter(cfg)
	mu := 10e6
	v.SetCapacityProvider(func(sim.Time) float64 { return mu })
	now := sim.Time(0)
	run := func(offered float64, steps int) uint8 {
		var code uint8
		gap := sim.FromSeconds(float64(packet.MTU*8) / offered)
		for i := 0; i < steps; i++ {
			now += gap
			v.Enqueue(now, packet.NewData(1, int64(i), packet.MTU, now))
			if p := v.Dequeue(now); p != nil {
				code = p.VCPLoad
			}
		}
		return code
	}
	if code := run(2e6, 3000); code != vcpLow {
		t.Errorf("20%% load coded %d, want low(%d)", code, vcpLow)
	}
	if code := run(9e6, 3000); code != vcpHigh {
		t.Errorf("90%% load coded %d, want high(%d)", code, vcpHigh)
	}
	// Overload: arrivals exceed capacity (queue builds since we dequeue
	// one per enqueue at the offered pace).
	if code := run(30e6, 3000); code != vcpOverload {
		t.Errorf("300%% load coded %d, want overload(%d)", code, vcpOverload)
	}
}

func TestVCPRouterCodeOnlyIncreases(t *testing.T) {
	v := NewVCPRouter(DefaultVCPConfig())
	v.SetCapacityProvider(func(sim.Time) float64 { return 100e6 })
	p := packet.NewData(1, 0, packet.MTU, 0)
	p.VCPLoad = vcpOverload // upstream says overload
	v.Enqueue(0, p)
	q := v.Dequeue(0)
	if q.VCPLoad != vcpOverload {
		t.Errorf("code lowered to %d", q.VCPLoad)
	}
}

func TestVCPSenderMIAIMD(t *testing.T) {
	s := NewVCPSender()
	mk := func(code uint8) cc.AckInfo {
		return cc.AckInfo{Ack: &packet.Packet{IsAck: true, VCPLoad: code}, AckedBytes: packet.MTU}
	}
	w0 := s.CwndPkts()
	for i := 0; i < 100; i++ {
		s.OnAck(0, nil, mk(vcpLow))
	}
	afterMI := s.CwndPkts()
	if afterMI <= w0 {
		t.Error("MI did not grow")
	}
	for i := 0; i < 100; i++ {
		s.OnAck(sim.Second, nil, mk(vcpHigh))
	}
	afterAI := s.CwndPkts()
	if afterAI <= afterMI {
		t.Error("AI did not grow")
	}
	s.OnAck(2*sim.Second, nil, mk(vcpOverload))
	if got := s.CwndPkts(); math.Abs(got-afterAI*0.875) > 1e-9 {
		t.Errorf("MD: %v, want %v", got, afterAI*0.875)
	}
	// A second overload within the MD freeze period must not halve again.
	s.OnAck(2*sim.Second+10*sim.Millisecond, nil, mk(vcpOverload))
	if got := s.CwndPkts(); math.Abs(got-afterAI*0.875) > 1e-9 {
		t.Errorf("MD applied twice within the freeze period: %v", got)
	}
}

func TestMeterRate(t *testing.T) {
	m := newMeter(100 * sim.Millisecond)
	now := sim.Time(0)
	for i := 0; i < 10; i++ {
		now += 10 * sim.Millisecond
		m.add(now, 1000)
	}
	if got := m.byteRate(now); math.Abs(got-100000) > 1 {
		t.Errorf("byte rate %v", got)
	}
}

// TestReversePathRouterTightensEchoedFeedback pins the reverse-channel
// contract the explicit baselines share with ABC's accel/brake echo:
// packet.NewAck copies the multi-bit headers onto the ACK verbatim, and a
// router hosted on the ACK route applies the same min/max rule it applies
// to data, so the sender obeys feedback reflecting the full round trip —
// a congested reverse edge tightens the signal instead of being an
// assumed-lossless channel.
func TestReversePathRouterTightensEchoedFeedback(t *testing.T) {
	t.Run("RCP min rate", func(t *testing.T) {
		// Saturate a 2 Mbit/s reverse-path router (2x overload) so its
		// computed rate falls well below the 8 Mbit/s the forward path
		// stamped, then route the echoing ACK through it.
		rev := NewRCPRouter(DefaultRCPConfig())
		rev.SetCapacityProvider(func(sim.Time) float64 { return 2e6 })
		now := sim.Time(0)
		gap := sim.FromSeconds(float64(packet.MTU*8) / 4e6)
		for i := 0; i < 3000; i++ {
			now += gap
			rev.Enqueue(now, packet.NewData(2, int64(i), packet.MTU, now))
			rev.Dequeue(now)
		}
		data := packet.NewData(1, 7, packet.MTU, now)
		data.RCPRate = 8e6
		ack := packet.NewAck(data, 8, now)
		if ack.RCPRate != 8e6 {
			t.Fatalf("NewAck did not echo the stamped rate: %v", ack.RCPRate)
		}
		rev.Enqueue(now, ack)
		out := rev.Dequeue(now)
		if out.RCPRate <= 0 || out.RCPRate >= 8e6 {
			t.Fatalf("reverse router left the echoed rate at %.0f bit/s, want tightened below 8e6", out.RCPRate)
		}
		s := NewRCPSender()
		s.OnAck(now, nil, cc.AckInfo{Ack: out, AckedBytes: packet.MTU})
		if rate, ok := s.PacingRate(now); !ok || rate != out.RCPRate {
			t.Errorf("sender paces at %v, want the reverse-tightened %v", rate, out.RCPRate)
		}
	})
	t.Run("XCP min feedback", func(t *testing.T) {
		rev := NewXCPRouter(DefaultXCPConfig())
		rev.SetCapacityProvider(func(sim.Time) float64 { return 2e6 })
		now := sim.Time(0)
		gap := sim.FromSeconds(float64(packet.MTU*8) / 4e6)
		for i := 0; i < 3000; i++ {
			now += gap
			rev.Enqueue(now, dataWithXCP(int64(i), 30000, 100*sim.Millisecond))
			rev.Dequeue(now)
		}
		// The forward path left a positive (one-MTU) feedback; the
		// overloaded reverse router must reduce it.
		data := dataWithXCP(7, 30000, 100*sim.Millisecond)
		ack := packet.NewAck(data, 8, now)
		if !ack.XCP.Valid || ack.XCP.Feedback != packet.MTU {
			t.Fatalf("NewAck did not echo the XCP header: %+v", ack.XCP)
		}
		rev.Enqueue(now, ack)
		out := rev.Dequeue(now)
		if out.XCP.Feedback >= packet.MTU {
			t.Fatalf("reverse router left echoed feedback at %.1f, want reduced below %d", out.XCP.Feedback, packet.MTU)
		}
		s := NewXCPSender(false)
		before := s.CwndPkts()
		s.OnAck(now, nil, cc.AckInfo{Ack: out, AckedBytes: packet.MTU})
		if got := s.CwndPkts(); got >= before+1 {
			t.Errorf("cwnd grew to %.2f pkts despite reverse-path congestion (was %.2f)", got, before)
		}
	})
	t.Run("VCP max load", func(t *testing.T) {
		rev := NewVCPRouter(DefaultVCPConfig())
		rev.SetCapacityProvider(func(sim.Time) float64 { return 10e6 })
		now := sim.Time(0)
		gap := sim.FromSeconds(float64(packet.MTU*8) / 30e6)
		for i := 0; i < 3000; i++ {
			now += gap
			rev.Enqueue(now, packet.NewData(2, int64(i), packet.MTU, now))
			rev.Dequeue(now)
		}
		data := packet.NewData(1, 7, packet.MTU, now)
		data.VCPLoad = vcpLow // forward path saw low load
		ack := packet.NewAck(data, 8, now)
		if ack.VCPLoad != vcpLow {
			t.Fatalf("NewAck did not echo the load code: %d", ack.VCPLoad)
		}
		rev.Enqueue(now, ack)
		out := rev.Dequeue(now)
		if out.VCPLoad != vcpOverload {
			t.Errorf("overloaded reverse router left load code %d, want overload(%d)", out.VCPLoad, vcpOverload)
		}
	})
}
