// VCP (Variable-structure Congestion Protocol, Xia et al. 2005): routers
// quantize their load factor into two ECN bits (low / high / overload) and
// senders switch between multiplicative increase, additive increase and
// multiplicative decrease. The paper (§7, Appendix D) notes VCP's
// coarse-grained feedback can take 12 RTTs to double the rate, versus one
// RTT for ABC.
package explicit

import (
	"abc/internal/cc"
	"abc/internal/packet"
	"abc/internal/qdisc"
	"abc/internal/sim"
)

// VCP load-factor codes carried in the packet's VCPLoad field.
const (
	vcpLow      = 1 // ρ < 80%: multiplicative increase
	vcpHigh     = 2 // 80% ≤ ρ < 100%: additive increase
	vcpOverload = 3 // ρ ≥ 100%: multiplicative decrease
)

// VCPConfig parameterizes a VCP router.
type VCPConfig struct {
	// Period is tρ, the load-factor measurement interval (200 ms).
	Period sim.Time
	// KappaQ weights persistent queue into the load factor (0.5).
	KappaQ float64
	// Gamma is the target utilization (0.98).
	Gamma float64
	// Limit bounds the queue in packets.
	Limit int
}

// DefaultVCPConfig returns the VCP paper's parameters.
func DefaultVCPConfig() VCPConfig {
	return VCPConfig{Period: 200 * sim.Millisecond, KappaQ: 0.5, Gamma: 0.98, Limit: 250}
}

// VCPRouter measures its load factor each period and stamps the code into
// departing packets (codes only ever increase along the path).
type VCPRouter struct {
	Cfg   VCPConfig
	Stats qdisc.Stats

	capacity func(now sim.Time) float64

	q     []*packet.Packet
	head  int
	bytes int

	periodStart  sim.Time
	arrivedBytes int64
	code         uint8
}

// NewVCPRouter returns a VCP router qdisc.
func NewVCPRouter(cfg VCPConfig) *VCPRouter {
	return &VCPRouter{Cfg: cfg, code: vcpLow}
}

// SetCapacityProvider implements qdisc.CapacityAware.
func (v *VCPRouter) SetCapacityProvider(f func(now sim.Time) float64) { v.capacity = f }

// Enqueue implements qdisc.Qdisc.
func (v *VCPRouter) Enqueue(now sim.Time, p *packet.Packet) bool {
	if v.Cfg.Limit > 0 && v.Len() >= v.Cfg.Limit {
		v.Stats.DroppedPackets++
		return false
	}
	if v.periodStart == 0 {
		v.periodStart = now
	}
	p.EnqueuedAt = now
	v.q = append(v.q, p)
	v.bytes += p.Size
	v.arrivedBytes += int64(p.Size)
	v.Stats.EnqueuedPackets++
	v.maybeUpdate(now)
	return true
}

// maybeUpdate recomputes the load factor once per period.
func (v *VCPRouter) maybeUpdate(now sim.Time) {
	T := now - v.periodStart
	if T < v.Cfg.Period {
		return
	}
	var c float64
	if v.capacity != nil {
		c = v.capacity(now) / 8 // bytes/sec
	}
	if c <= 0 {
		v.code = vcpOverload
	} else {
		rho := (float64(v.arrivedBytes) + v.Cfg.KappaQ*float64(v.bytes)) /
			(v.Cfg.Gamma * c * T.Seconds())
		switch {
		case rho < 0.8:
			v.code = vcpLow
		case rho < 1.0:
			v.code = vcpHigh
		default:
			v.code = vcpOverload
		}
	}
	v.periodStart = now
	v.arrivedBytes = 0
}

// Dequeue implements qdisc.Qdisc.
func (v *VCPRouter) Dequeue(now sim.Time) *packet.Packet {
	if v.head >= len(v.q) {
		return nil
	}
	p := v.q[v.head]
	v.q[v.head] = nil
	v.head++
	v.bytes -= p.Size
	if v.head > 64 && v.head*2 >= len(v.q) {
		n := copy(v.q, v.q[v.head:])
		v.q = v.q[:n]
		v.head = 0
	}
	if v.code > p.VCPLoad {
		p.VCPLoad = v.code
	}
	v.Stats.DequeuedPackets++
	v.Stats.DequeuedBytes += int64(p.Size)
	return p
}

// Len implements qdisc.Qdisc.
func (v *VCPRouter) Len() int { return len(v.q) - v.head }

// Bytes implements qdisc.Qdisc.
func (v *VCPRouter) Bytes() int { return v.bytes }

// VCPSender applies MI/AI/MD per the received code with the VCP paper's
// parameters α=1.0, β=0.875, ξ=0.0625.
type VCPSender struct {
	// Alpha, Beta, Xi are the AI, MD and MI parameters.
	Alpha, Beta, Xi float64

	cwnd    float64
	lastMD  sim.Time
	curCode uint8
}

// NewVCPSender returns a VCP sender with the paper's parameters.
func NewVCPSender() *VCPSender {
	return &VCPSender{Alpha: 1.0, Beta: 0.875, Xi: 0.0625, cwnd: 4, curCode: vcpLow}
}

// Name implements cc.Algorithm.
func (s *VCPSender) Name() string { return "VCP" }

// StampData implements cc.DataStamper.
func (s *VCPSender) StampData(now sim.Time, e *cc.Endpoint, p *packet.Packet) {
	p.VCPLoad = 0
}

// OnAck implements cc.Algorithm: per-ACK scaled MI/AI, and MD at most
// once per load-factor period.
func (s *VCPSender) OnAck(now sim.Time, e *cc.Endpoint, info cc.AckInfo) {
	if info.AckedBytes == 0 {
		return
	}
	code := info.Ack.VCPLoad
	if code == 0 {
		code = s.curCode
	}
	s.curCode = code
	switch code {
	case vcpLow:
		// MI scaled per ACK: (1+ξ)^(1/w) per ACK ≈ (1+ξ) per RTT.
		s.cwnd *= 1 + s.Xi/s.cwnd
	case vcpHigh:
		s.cwnd += s.Alpha / s.cwnd
	case vcpOverload:
		if now-s.lastMD >= 200*sim.Millisecond {
			s.cwnd *= s.Beta
			s.lastMD = now
		}
	}
	if s.cwnd < 2 {
		s.cwnd = 2
	}
}

// OnCongestion implements cc.Algorithm.
func (s *VCPSender) OnCongestion(now sim.Time, e *cc.Endpoint) {
	s.cwnd *= s.Beta
	if s.cwnd < 2 {
		s.cwnd = 2
	}
}

// OnRTO implements cc.Algorithm.
func (s *VCPSender) OnRTO(now sim.Time, e *cc.Endpoint) { s.cwnd = 2 }

// CwndPkts implements cc.Algorithm.
func (s *VCPSender) CwndPkts() float64 { return s.cwnd }
