// Quickstart: one ABC flow over a time-varying wireless bottleneck.
//
// This example wires the minimal ABC deployment by hand — sender, ABC
// router on the bottleneck, receiver echoing accel/brake marks — and
// prints the flow's throughput against the changing link capacity,
// demonstrating the one-RTT window doubling/halving that one bit of
// feedback per packet achieves.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	"abc/internal/abc"
	"abc/internal/cc"
	"abc/internal/netem"
	"abc/internal/packet"
	"abc/internal/sim"
	"abc/internal/trace"
)

func main() {
	s := sim.New(1)

	// A wireless link stepping through rates every 4 seconds.
	link := trace.Steps("demo", []float64{8e6, 20e6, 4e6, 14e6}, 4*sim.Second)

	// The ABC router with the paper's parameters (η=0.98, δ=133 ms).
	router := abc.NewRouter(abc.DefaultRouterConfig())

	// Topology: sender → ABC bottleneck → 25 ms wire → receiver, ACKs
	// back over another 25 ms wire (50 ms propagation RTT).
	const propRTT = 50 * sim.Millisecond
	sender := abc.NewSender()
	var ep *cc.Endpoint

	recvWire := &netem.Wire{S: s, Delay: propRTT / 2}
	bottleneck := netem.NewTraceLink(s, link, router, recvWire)
	ackWire := &netem.Wire{S: s, Delay: propRTT / 2}
	recv := netem.NewReceiver(s, 0, ackWire)
	recvWire.Dst = recv

	ep = cc.NewEndpoint(s, 0, bottleneck, sender)
	ackWire.Dst = ep

	// Measure delivered bytes and queuing delay each second.
	var delivered int64
	recv.OnData = func(now sim.Time, p *packet.Packet) { delivered += int64(p.Size) }

	fmt.Println("time   capacity   throughput   queue   wabc")
	var last int64
	s.Every(sim.Second, func() bool {
		now := s.Now()
		tput := float64(delivered-last) * 8 / 1e6
		last = delivered
		fmt.Printf("%4.0fs %7.1f Mbps %7.2f Mbps %5d pkt %6.0f\n",
			now.Seconds(), link.CapacityBps(now, sim.Second)/1e6,
			tput, router.Len(), sender.WABC())
		return now < 16*sim.Second
	})

	ep.Start()
	s.RunUntil(16 * sim.Second)

	fmt.Printf("\ndelivered %.1f MB; sender saw %d accelerates, %d brakes\n",
		float64(delivered)/1e6, sender.Accels, sender.Brakes)
}
