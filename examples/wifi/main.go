// WiFi: the §4.1 link-rate estimator in action. The example first shows
// the estimator inferring the capacity of a modelled 802.11n link from
// A-MPDU batch sizes and block-ACK timing while the sender is NOT
// backlogged (the hard case the paper solves), then runs ABC end-to-end
// over the same link while the MCS index — and hence the capacity —
// changes under it.
//
// Run: go run ./examples/wifi
package main

import (
	"fmt"

	"abc/internal/exp"
	"abc/internal/packet"
	"abc/internal/qdisc"
	"abc/internal/sim"
	"abc/internal/wifi"
)

func main() {
	fmt.Println("== Part 1: link-rate estimation for a non-backlogged user ==")
	cfg := wifi.DefaultLinkConfig()
	cfg.MCS = func(sim.Time) int { return 4 } // 39 Mbit/s PHY
	trueCap := wifi.TrueCapacityBps(cfg, 0) / 1e6
	fmt.Printf("link: MCS 4, true capacity %.1f Mbit/s\n", trueCap)
	fmt.Println("offered(Mbps)  predicted(Mbps)")
	for _, load := range []float64{2, 5, 10, 20, 30, 40} {
		s := sim.New(1)
		est := wifi.NewEstimator(cfg.MaxBatch, cfg.FrameSize, 40*sim.Millisecond)
		link := wifi.NewLink(s, cfg, qdisc.NewDropTail(1000), &packet.Sink{}, est)
		inject(s, link, load*1e6, 8*sim.Second)
		var sum float64
		var n int
		s.Every(100*sim.Millisecond, func() bool {
			if s.Now() > 2*sim.Second {
				if v := est.RateBps(s.Now()); v > 0 {
					sum += v / 1e6
					n++
				}
			}
			return s.Now() < 8*sim.Second
		})
		s.RunUntil(8 * sim.Second)
		fmt.Printf("%12.1f %15.2f\n", load, sum/float64(n))
	}

	fmt.Println()
	fmt.Println("== Part 2: ABC over the Wi-Fi link, MCS alternating 1<->7 ==")
	sums, err := exp.Fig10WiFi(1, exp.AlternatingMCS(1), 30*sim.Second, 1)
	if err != nil {
		panic(err)
	}
	for _, s := range sums {
		fmt.Println(s)
	}
}

// inject drives constant-bit-rate traffic into the link.
func inject(s *sim.Simulator, dst packet.Node, bps float64, end sim.Time) {
	gap := sim.FromSeconds(float64(packet.MTU*8) / bps)
	var seq int64
	var tick func()
	tick = func() {
		if s.Now() >= end {
			return
		}
		dst.Recv(packet.NewData(0, seq, packet.MTU, s.Now()))
		seq++
		s.After(gap, tick)
	}
	s.After(gap, tick)
}
