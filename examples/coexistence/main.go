// Coexistence: ABC and Cubic sharing an ABC bottleneck through the §5.2
// dual-queue router. Two ABC flows and two Cubic flows arrive staggered
// on a 24 Mbit/s link; the router isolates the queues, measures demands
// with a Space-Saving sketch and assigns max-min fair weights, so the
// long flows converge to equal shares while ABC keeps its low queuing
// delay despite the Cubic queue next door.
//
// Run: go run ./examples/coexistence
package main

import (
	"fmt"

	"abc/internal/exp"
)

func main() {
	fmt.Println("24 Mbit/s dual-queue bottleneck; arrivals: ABC@0s, ABC@25s, Cubic@50s, Cubic@75s")
	r, err := exp.Fig7Coexistence(1)
	if err != nil {
		panic(err)
	}

	fmt.Println()
	fmt.Println("throughput while all four flows are active (100-195 s):")
	labels := []string{"ABC 1", "ABC 2", "Cubic 1", "Cubic 2"}
	for i, l := range labels {
		fmt.Printf("  %-8s %5.2f Mbit/s\n", l, r.SteadyTput[i])
	}
	fmt.Printf("\nJain fairness index: %.3f\n", r.Jain)
	fmt.Printf("p95 queuing delay:   ABC flows %.0f ms, Cubic flows %.0f ms\n",
		r.ABCQDelayP95, r.CubicQDelayP95)
	fmt.Println("\n(ABC keeps low delay in its own queue while sharing the link fairly.)")
}
