// Cellular: the paper's Fig. 1 scenario as a runnable demo. Four schemes
// — Cubic, Verus, Cubic+CoDel and ABC — each drive a backlogged flow over
// the same emulated LTE link, and the example prints the utilization /
// delay trade-off each achieves: Cubic bufferbloats, Cubic+CoDel
// underutilizes after rate increases, and ABC gets both high utilization
// and low delay.
//
// Run: go run ./examples/cellular
package main

import (
	"fmt"

	"abc/internal/exp"
)

func main() {
	fmt.Println("Emulated LTE link (30 s, RTT 100 ms, 250-packet buffer)")
	fmt.Println()
	runs, err := exp.Fig1Timeseries(1)
	if err != nil {
		panic(err)
	}
	for _, r := range runs {
		fmt.Println(r.Summary)
	}
	fmt.Println()

	// Show ABC's trajectory against the link: high tracking fidelity.
	for _, r := range runs {
		if r.Scheme != "ABC" {
			continue
		}
		fmt.Println("ABC trajectory:")
		fmt.Println("  t(s)   tput(Mbps)   queue delay(ms)")
		for i := range r.Tput.Times {
			if i%5 != 0 {
				continue
			}
			fmt.Printf("%6.1f %10.2f %14.1f\n",
				r.Tput.Times[i], r.Tput.Values[i], r.QDelay.Values[i])
		}
	}
}
