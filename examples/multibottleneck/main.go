// Multibottleneck: the §3.1.2 multi-bottleneck rule in action. Two ABC
// routers sit in series (an uplink and a downlink cell, as when two
// smartphones talk over an ABC-compliant network); each may only demote
// accelerates to brakes, so the accelerate fraction the receiver echoes
// equals the minimum f(t) along the path and the sender converges to the
// tighter link — wherever it currently is.
//
// Run: go run ./examples/multibottleneck
package main

import (
	"fmt"

	"abc/internal/abc"
	"abc/internal/cc"
	"abc/internal/netem"
	"abc/internal/packet"
	"abc/internal/sim"
	"abc/internal/trace"
)

func main() {
	s := sim.New(1)

	// Two links whose step patterns alternate which one is tighter.
	up := trace.Steps("uplink", []float64{14e6, 6e6, 16e6, 5e6}, 4*sim.Second)
	down := trace.Steps("downlink", []float64{8e6, 18e6, 7e6, 15e6}, 4*sim.Second)

	r1 := abc.NewRouter(abc.DefaultRouterConfig())
	r2 := abc.NewRouter(abc.DefaultRouterConfig())

	sender := abc.NewSender()
	var ep *cc.Endpoint

	wire := &netem.Wire{S: s, Delay: 25 * sim.Millisecond}
	link2 := netem.NewTraceLink(s, down, r2, wire)
	link1 := netem.NewTraceLink(s, up, r1, link2)
	ackWire := &netem.Wire{S: s, Delay: 25 * sim.Millisecond}
	recv := netem.NewReceiver(s, 0, ackWire)
	wire.Dst = recv

	ep = cc.NewEndpoint(s, 0, link1, sender)
	ackWire.Dst = ep

	var delivered int64
	recv.OnData = func(now sim.Time, p *packet.Packet) { delivered += int64(p.Size) }

	fmt.Println("time   uplink  downlink  bottleneck  throughput")
	var last int64
	s.Every(sim.Second, func() bool {
		now := s.Now()
		u := up.CapacityBps(now, sim.Second) / 1e6
		d := down.CapacityBps(now, sim.Second) / 1e6
		tput := float64(delivered-last) * 8 / 1e6
		last = delivered
		bott := u
		if d < u {
			bott = d
		}
		fmt.Printf("%4.0fs %6.1f %8.1f %10.1f %10.2f Mbps\n", now.Seconds(), u, d, bott, tput)
		return now < 16*sim.Second
	})

	ep.Start()
	s.RunUntil(16 * sim.Second)

	fmt.Printf("\nrouter 1 marked %d accel / %d brake; router 2 demoted a further %d\n",
		r1.AccelMarked, r1.BrakeMarked, r2.BrakeMarked)
	fmt.Println("(the flow tracks the minimum of the two links as the bottleneck moves)")
}
